//! Differential tests: the compiled engine must be bit-identical to the
//! interpreter — signal snapshots **and** `StmtExec` records — on every
//! design in `crates/designs` and a large RVDG-generated corpus, at every
//! supported thread count. The 64-lane batch engine is held to the same
//! oracle: traces extracted from any lane of any batch shape must equal the
//! scalar compiled engine's output bit-for-bit.

use mutate::{BugBudget, Campaign};
use rvdg::{Generator, RvdgConfig};
use sim::{
    CancelToken, EngineKind, SignalId, SignalRole, SignalSet, SimError, Simulator, TestbenchGen,
    Trace, VerdictTrace,
};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::train::{self, Dataset, TrainConfig};
use verilog::Module;

/// Cycles per stimulus; long enough to exercise resets, wrap-around and
/// dirty-set skipping, short enough to keep the corpus fast.
const CYCLES: usize = 48;
/// Independent stimuli per design.
const STIMULI: usize = 3;

/// Runs `module` through both engines on identical stimuli and returns the
/// paired traces. Panics if the compiled simulator silently fell back to the
/// interpreter when `expect_compiled` is set — a silent fallback would make
/// the differential comparison vacuous.
fn run_both(module: &Module, seed: u64, expect_compiled: bool) -> Vec<(Trace, Trace)> {
    let mut compiled = Simulator::new(module).expect("compiled elaboration");
    let mut interp = Simulator::interpreted(module).expect("interpreted elaboration");
    assert_eq!(interp.engine_kind(), EngineKind::Interpreted);
    if expect_compiled {
        assert_eq!(
            compiled.engine_kind(),
            EngineKind::Compiled,
            "design unexpectedly fell back to the interpreter"
        );
    }
    let stimuli = TestbenchGen::new(seed).generate_many(compiled.netlist(), CYCLES, STIMULI);
    stimuli
        .iter()
        .map(|stim| {
            let a = compiled.run(stim).expect("compiled run");
            let b = interp.run(stim).expect("interpreted run");
            (a, b)
        })
        .collect()
}

fn assert_identical(name: &str, pairs: &[(Trace, Trace)]) {
    for (i, (compiled, interp)) in pairs.iter().enumerate() {
        assert_eq!(
            compiled, interp,
            "{name}: stimulus {i} diverged between compiled and interpreted engines"
        );
    }
}

/// Every Table I design, compiled vs interpreted, at 1/2/8 threads.
#[test]
fn designs_catalog_is_bit_identical_across_engines_and_threads() {
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            let results = par::par_map(&designs::catalog(), |d| {
                let module = d.module().expect("design parses");
                (d.name, run_both(&module, 0xD1FF_0001, true))
            });
            for (name, pairs) in &results {
                assert_identical(name, pairs);
            }
        });
    }
}

/// ≥ 100 RVDG-generated designs, compiled vs interpreted, at 1/2/8 threads.
#[test]
fn rvdg_corpus_is_bit_identical_across_engines_and_threads() {
    let corpus = Generator::new(RvdgConfig::default(), 0xC0FF_EE00)
        .generate_corpus(104)
        .expect("rvdg corpus generates");
    assert!(corpus.len() >= 100);
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            let results = par::par_map(&corpus, |d| {
                (d.seed, run_both(&d.module, d.seed ^ 0xD1FF, true))
            });
            for (seed, pairs) in &results {
                assert_identical(&format!("rvdg seed {seed}"), pairs);
            }
        });
    }
}

/// A wider RVDG shape (more branches, wider vectors) to cover part selects,
/// case statements and multi-bit arithmetic beyond the default mix.
#[test]
fn rvdg_wide_corpus_is_bit_identical() {
    let cfg = RvdgConfig {
        num_wide_inputs: 4,
        wide_width: 8,
        num_branches: 5,
        stmts_per_branch: 3,
        ..RvdgConfig::default()
    };
    let corpus = Generator::new(cfg, 0xBEEF_0002)
        .generate_corpus(24)
        .expect("rvdg corpus generates");
    for d in &corpus {
        assert_identical(
            &format!("rvdg-wide seed {}", d.seed),
            &run_both(&d.module, d.seed ^ 0xA5A5, true),
        );
    }
}

/// One end-to-end pass over `corpus`: simulate every design (the returned
/// [`Trace`]s carry both signal snapshots and `StmtExec` records), build the
/// training dataset, and train a model for two epochs. The fingerprint is
/// everything downstream code consumes — traces plus bit-level epoch losses.
fn pipeline_fingerprint(corpus: &[Module]) -> (Vec<Trace>, Vec<u32>) {
    let traces: Vec<Trace> = par::par_map(corpus, |m| {
        let mut s = Simulator::new(m).expect("elaborates");
        let stimuli = TestbenchGen::new(0xAB5)
            .with_hold_probability(0.8)
            .generate_many(s.netlist(), 24, 2);
        // Batch path: the obs on/off comparison below must also hold for
        // the lane-parallel engine, not just the scalar ones.
        s.run_batch(&stimuli).expect("simulates")
    })
    .into_iter()
    .flatten()
    .collect();
    let dataset = Dataset::from_designs(corpus, 7, 24, 2).expect("builds");
    let mut model = VeriBugModel::new(ModelConfig::default());
    let report = train::train(
        &mut model,
        &dataset,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    )
    .expect("trains");
    let losses = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
    (traces, losses)
}

/// Enabling metrics/span collection must never perturb pipeline results:
/// the obs layer is observation-only (per-thread shards merged by
/// commutative addition, spans off the hot path). Compares traces, exec
/// records, and training losses bit-for-bit between an obs-off run and an
/// obs-on run **inside a live trace** (span-tree capture plus per-trace
/// counter attribution active, as in `veribug serve`) at 1/2/8 threads.
#[test]
fn obs_collection_never_perturbs_results() {
    let corpus: Vec<Module> = Generator::new(RvdgConfig::default(), 0x0B5_D1FF)
        .generate_corpus(6)
        .expect("rvdg corpus generates")
        .into_iter()
        .map(|d| d.module)
        .collect();
    for threads in [1usize, 2, 8] {
        let (off, on) = par::with_threads(threads, || {
            let was_enabled = obs::enabled();
            obs::set_enabled(false);
            let off = pipeline_fingerprint(&corpus);
            obs::set_enabled(true);
            let scope =
                obs::live::begin(&format!("differential-{threads}"), "TEST", "/differential");
            let on = {
                let _span = obs::span("serve.request");
                pipeline_fingerprint(&corpus)
            };
            scope.finish(200);
            obs::set_enabled(was_enabled);
            (off, on)
        });
        assert_eq!(
            off.0, on.0,
            "traces/exec records perturbed by live telemetry at {threads} threads"
        );
        assert_eq!(
            off.1, on.1,
            "training losses perturbed by live telemetry at {threads} threads"
        );
    }
}

/// Runs `n` stimuli through the batch engine and through the scalar compiled
/// engine one at a time, returning the paired trace vectors. Panics if the
/// design unexpectedly lacks a batch engine — that would make the
/// comparison vacuous.
fn run_batch_vs_scalar(module: &Module, seed: u64, n: usize) -> (Vec<Trace>, Vec<Trace>) {
    let mut batch = Simulator::new(module).expect("batch elaboration");
    assert_eq!(
        batch.batch_engine_kind(),
        EngineKind::Batch,
        "design unexpectedly has no batch engine"
    );
    let mut scalar = Simulator::new(module).expect("scalar elaboration");
    let stimuli = TestbenchGen::new(seed).generate_many(batch.netlist(), CYCLES, n);
    let batched = batch.run_batch(&stimuli).expect("batch run");
    let sequential: Vec<Trace> = stimuli
        .iter()
        .map(|st| scalar.run(st).expect("scalar run"))
        .collect();
    (batched, sequential)
}

fn assert_lanes_identical(name: &str, batched: &[Trace], sequential: &[Trace]) {
    assert_eq!(batched.len(), sequential.len(), "{name}: trace count");
    for (i, (b, s)) in batched.iter().zip(sequential).enumerate() {
        assert_eq!(
            b, s,
            "{name}: stimulus {i} diverged between batch and scalar engines"
        );
    }
}

/// Every Table I design, batch vs scalar, at lane counts that cover a single
/// lane, an odd partial batch, both boundary fills (63/64), a spill into a
/// second batch (65), and two full batches plus a partial tail (130).
#[test]
fn batch_engine_matches_scalar_across_lane_counts() {
    for d in &designs::catalog() {
        let module = d.module().expect("design parses");
        for n in [1usize, 7, 63, 64, 65, 130] {
            let (batched, sequential) = run_batch_vs_scalar(&module, 0xBA7C_0001 ^ n as u64, n);
            assert_lanes_identical(&format!("{} n={n}", d.name), &batched, &sequential);
        }
    }
}

/// RVDG corpus, batch vs scalar, under the worker pool at 1/2/8 threads.
/// Each design gets a partial batch (7 lanes) so mask bookkeeping runs with
/// inactive high lanes while other designs simulate concurrently.
#[test]
fn batch_matches_scalar_on_rvdg_corpus_across_threads() {
    let corpus = Generator::new(RvdgConfig::default(), 0xBA7C_0002)
        .generate_corpus(24)
        .expect("rvdg corpus generates");
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            let results = par::par_map(&corpus, |d| {
                (d.seed, run_batch_vs_scalar(&d.module, d.seed ^ 0x7EA7, 7))
            });
            for (seed, (batched, sequential)) in &results {
                assert_lanes_identical(&format!("rvdg seed {seed}"), batched, sequential);
            }
        });
    }
}

/// Cancellation mid-batch: a poll-budget token fires at a deterministic
/// cycle, the whole batch reports `Cancelled` (matching the scalar
/// collect-everything-or-error contract), and the simulator recovers after
/// the token is replaced.
#[test]
fn batch_cancellation_mid_batch_is_deterministic_and_recoverable() {
    let catalog = designs::catalog();
    let module = catalog[0].module().expect("design parses");
    let mut sim = Simulator::new(&module).expect("elaborates");
    let stimuli = TestbenchGen::new(0xCA4C).generate_many(sim.netlist(), CYCLES, 10);
    sim.set_cancel(CancelToken::after_polls(3));
    let err = sim
        .run_batch(&stimuli)
        .expect_err("budget must fire mid-batch");
    assert!(
        matches!(err, SimError::Cancelled { at_cycle: 3 }),
        "expected deterministic cancellation at cycle 3, got {err:?}"
    );
    sim.set_cancel(CancelToken::new());
    let batched = sim.run_batch(&stimuli).expect("rerun after cancel");
    let mut scalar = Simulator::new(&module).expect("elaborates");
    let sequential: Vec<Trace> = stimuli
        .iter()
        .map(|st| scalar.run(st).expect("scalar run"))
        .collect();
    assert_lanes_identical("post-cancel rerun", &batched, &sequential);
}

/// Read-modify-write part/bit selects on a width-64 register under divergent
/// masks: some lanes take the branch that flips bit 63 and rewrites a part
/// select, others take the dynamic-bit-select path. The merged register
/// state and the per-lane `StmtExec` records must match scalar exactly.
#[test]
fn part_select_rmw_at_bit_63_under_divergent_masks() {
    let unit = verilog::parse(
        "module psel(input clk, input c, input [5:0] i, output reg [63:0] r);
         always @(posedge clk) begin
         if (c) begin
         r[63] <= ~r[63];
         r[62:56] <= r[6:0] + 1'b1;
         end else begin
         r[i] <= ~r[i];
         end
         end
endmodule",
    )
    .expect("parses");
    let (batched, sequential) = run_batch_vs_scalar(unit.top(), 0x9E1, 64);
    assert_lanes_identical("psel", &batched, &sequential);
}

/// Mixed-width concatenation feeding full-width and narrow registers, with
/// per-lane shift-in bits, batch vs scalar across a full 64-lane batch.
#[test]
fn mixed_width_concat_across_lanes_matches_scalar() {
    let unit = verilog::parse(
        "module mwc(input clk, input a, input [6:0] b, input [3:0] s,
         output reg [63:0] y, output reg [11:0] z);
         always @(posedge clk) begin
         y <= {y[62:0], a ^ b[0]};
         z <= {b[3:0], s, b[6:3]};
         end
endmodule",
    )
    .expect("parses");
    let (batched, sequential) = run_batch_vs_scalar(unit.top(), 0x3C0C, 64);
    assert_lanes_identical("mwc", &batched, &sequential);
}

/// Every design output, as a verdict-mode observed set.
fn output_set(sim: &Simulator) -> SignalSet {
    SignalSet::from_ids(
        sim.netlist()
            .signals()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role == SignalRole::Output)
            .map(|(i, _)| SignalId(i as u32)),
    )
}

/// The verdict a full trace implies for `observed`: its observed columns,
/// cycle-major. `records_elided` is engine bookkeeping and excluded from
/// `VerdictTrace` equality, so zero is fine here.
fn expected_verdict(trace: &Trace, observed: &SignalSet) -> VerdictTrace {
    VerdictTrace {
        values: trace
            .cycles
            .iter()
            .flat_map(|c| observed.ids().iter().map(|&id| c.value(id)))
            .collect(),
        nobs: observed.len(),
        records_elided: 0,
    }
}

/// Runs `module` in verdict mode on every engine (scalar compiled,
/// interpreter, 64-lane batch) and asserts each verdict equals the observed
/// columns of the full-trace oracle: same values, and therefore the same
/// diverged/first-divergence answers any screen would compute.
fn assert_verdicts_match_full(name: &str, module: &Module, seed: u64, n: usize) {
    let mut sim = Simulator::new(module).expect("compiled elaboration");
    let mut interp = Simulator::interpreted(module).expect("interpreted elaboration");
    let observed = output_set(&sim);
    assert!(!observed.is_empty(), "{name}: design has no outputs");
    let stimuli = TestbenchGen::new(seed).generate_many(sim.netlist(), CYCLES, n);
    let full: Vec<Trace> = stimuli
        .iter()
        .map(|st| sim.run(st).expect("full-trace oracle"))
        .collect();
    for (i, (st, t)) in stimuli.iter().zip(&full).enumerate() {
        let expect = expected_verdict(t, &observed);
        let scalar = sim.run_verdict(st, &observed).expect("scalar verdict");
        assert_eq!(scalar, expect, "{name}: stimulus {i} scalar verdict");
        let interp_v = interp.run_verdict(st, &observed).expect("interp verdict");
        assert_eq!(interp_v, expect, "{name}: stimulus {i} interpreter verdict");
    }
    let batched = sim
        .run_batch_verdict(&stimuli, &observed)
        .expect("batch verdict");
    assert_eq!(batched.len(), full.len(), "{name}: verdict count");
    for (i, (v, t)) in batched.iter().zip(&full).enumerate() {
        assert_eq!(
            v,
            &expected_verdict(t, &observed),
            "{name}: stimulus {i} batch verdict"
        );
    }
}

/// Verdict mode vs the full-trace oracle on every Table I design and an
/// RVDG corpus, under the worker pool at 1/2/8 threads.
#[test]
fn verdict_mode_matches_full_oracle_on_catalog_and_rvdg_across_threads() {
    let corpus = Generator::new(RvdgConfig::default(), 0x7E4D_1C70)
        .generate_corpus(16)
        .expect("rvdg corpus generates");
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            par::par_map(&designs::catalog(), |d| {
                let module = d.module().expect("design parses");
                assert_verdicts_match_full(d.name, &module, 0x7E4D_0001, 9);
            });
            par::par_map(&corpus, |d| {
                assert_verdicts_match_full(
                    &format!("rvdg seed {}", d.seed),
                    &d.module,
                    d.seed ^ 0x7E4D,
                    7,
                );
            });
        });
    }
}

/// The two-pass campaign (verdict screening, then full traces for kept
/// mutants only) must be bit-identical to the single-pass full-trace
/// oracle at every thread count: same mutants in the same order, same
/// sources and sites, same observability flags, same labels, byte-equal
/// traces, and the same failure cycles.
#[test]
fn two_pass_campaign_is_bit_identical_to_single_pass_across_threads() {
    let module = designs::catalog()[0].module().expect("design parses");
    let target = designs::catalog()[0].targets[0];
    let budget = BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let campaign = Campaign::new(0x2BA55);
    let oracle = campaign
        .run_single_pass(&module, target, &budget)
        .expect("single-pass oracle");
    assert!(!oracle.is_empty(), "oracle campaign produced no mutants");
    for threads in [1usize, 2, 8] {
        let two_pass = par::with_threads(threads, || {
            campaign
                .run(&module, target, &budget)
                .expect("two-pass campaign")
        });
        assert_eq!(two_pass.len(), oracle.len(), "{threads} threads");
        for (a, b) in two_pass.iter().zip(&oracle) {
            assert_eq!(a.source, b.source, "{threads} threads");
            assert_eq!(a.site, b.site, "{threads} threads");
            assert_eq!(a.observable, b.observable, "{threads} threads");
            assert_eq!(a.runs.len(), b.runs.len(), "{threads} threads");
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.label, rb.label, "{threads} threads");
                assert_eq!(ra.trace, rb.trace, "{threads} threads");
                assert_eq!(
                    ra.failure_cycles(),
                    rb.failure_cycles(),
                    "{threads} threads"
                );
            }
        }
    }
}

/// The two-pass localizer must produce the same report at every thread
/// count, and its verdict-derived labels must match what a full-trace
/// cosimulation computes on the same stimuli.
#[test]
fn two_pass_localize_report_is_thread_invariant_and_matches_full_cosim() {
    let golden = verilog::parse(
        "module m(input a, input b, input c, output y);\n\
         wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule",
    )
    .expect("parses")
    .top()
    .clone();
    let buggy = verilog::parse(
        "module m(input a, input b, input c, output y);\n\
         wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule",
    )
    .expect("parses")
    .top()
    .clone();
    let model = VeriBugModel::new(ModelConfig::default());
    let opts = veribug::LocalizeOptions {
        runs: 24,
        cycles: 8,
        ..Default::default()
    };
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            par::with_threads(threads, || {
                veribug::localize::run(&model, &golden, &buggy, "y", &opts).expect("localizes")
            })
        })
        .collect();
    let base = &reports[0];
    assert!(base.has_failures(), "a|b vs a&b must diverge");
    for r in &reports[1..] {
        assert_eq!(r.failing_runs, base.failing_runs);
        assert_eq!(r.suspects, base.suspects);
    }
    // The verdict-derived failure labelling must agree with a full-trace
    // cosimulation of the same seeded stimuli.
    let mut golden_sim = Simulator::new(&golden).expect("elaborates");
    let stimuli = TestbenchGen::new(opts.stim_seed)
        .with_hold_probability(opts.hold_probability)
        .generate_many(golden_sim.netlist(), opts.cycles, opts.runs);
    let target = golden_sim.netlist().signal_id("y").expect("target");
    let golden_runs = mutate::golden_traces(&mut golden_sim, &stimuli).expect("golden traces");
    let labelled =
        mutate::cosimulate_against(&golden_runs, target, &buggy, &stimuli).expect("cosimulates");
    let failing = labelled
        .iter()
        .filter(|r| r.label == sim::TraceLabel::Failing)
        .count();
    assert_eq!(base.failing_runs, failing);
    assert_eq!(base.total_runs, labelled.len());
}

/// A static combinational loop must fall back to the interpreter and report
/// `CombinationalLoop` exactly as before.
#[test]
fn comb_loop_falls_back_and_still_errors() {
    let unit = verilog::parse(
        "module loopy(input a, output y);\nwire t;\n\
         assign t = ~y;\nassign y = t & a;\nendmodule",
    )
    .expect("parses");
    let mut sim = Simulator::new(unit.top()).expect("elaborates");
    assert_eq!(sim.engine_kind(), EngineKind::Interpreted);
    let stim = sim::Stimulus {
        vectors: vec![sim::InputVector {
            assigns: vec![("a".into(), 1)],
        }],
    };
    let err = sim.run(&stim).expect_err("oscillating loop must error");
    assert!(matches!(err, sim::SimError::CombinationalLoop { .. }));
}
