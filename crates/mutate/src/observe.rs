//! Observability checking by golden-vs-mutant co-simulation.
//!
//! A bug is **observable** when it symptomatizes at the target output under
//! at least one stimulus (paper Sec. V, "Bug injection"). The same
//! co-simulation also labels traces: a run where the target diverges is a
//! failure trace (`T_f`), one where the bug stays masked is a correct trace
//! (`T_c`).

use sim::{SignalSet, SimError, Simulator, Stimulus, Trace, TraceLabel, TraceMode, VerdictTrace};
use verilog::Module;

/// A pair of traces from the same stimulus, with the failure label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledRun {
    /// The mutant's trace (this is what VeriBug analyzes).
    pub trace: Trace,
    /// The golden design's trace on the same stimulus.
    pub golden: Trace,
    /// Failing when the target output diverged in any cycle.
    pub label: TraceLabel,
    /// The target output's signal id (same in golden and mutant: the
    /// mutation never touches declarations).
    pub target: sim::SignalId,
}

impl LabelledRun {
    /// Cycles where the mutant's target output diverged from golden.
    pub fn failure_cycles(&self) -> Vec<u32> {
        self.trace
            .cycles
            .iter()
            .zip(&self.golden.cycles)
            .filter(|(m, g)| m.value(self.target) != g.value(self.target))
            .map(|(m, _)| m.cycle)
            .collect()
    }
}

/// The verdict of one screening run: where (if anywhere) the mutant's
/// target output diverged from golden, plus elision accounting.
///
/// This is everything the campaign's accept/reject machinery reads — the
/// observable flag is "any run diverged", the label is "this run diverged",
/// and the divergence-cycle histogram takes the first cycle — so the
/// screening pass can run in [`TraceMode::Verdict`] and skip full traces
/// entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct RunVerdict {
    /// Cycles (ascending) where the target output diverged from golden.
    pub divergence_cycles: Vec<u32>,
    /// [`sim::StmtExec`] records the verdict run declined to materialize
    /// (best-effort accounting, not part of the verdict itself).
    pub records_elided: u64,
}

impl RunVerdict {
    /// True when the target output diverged in any cycle.
    pub fn diverged(&self) -> bool {
        !self.divergence_cycles.is_empty()
    }

    /// The label full-trace co-simulation would assign this run.
    pub fn label(&self) -> TraceLabel {
        if self.diverged() {
            TraceLabel::Failing
        } else {
            TraceLabel::Correct
        }
    }

    /// The first divergence cycle, if any.
    pub fn first_divergence(&self) -> Option<u32> {
        self.divergence_cycles.first().copied()
    }
}

/// The trace mode a screening pass runs under: verdict mode observing
/// exactly what divergence labelling reads — the target output.
pub fn screening_mode(target: sim::SignalId) -> TraceMode {
    TraceMode::Verdict {
        observed: SignalSet::from_ids([target]),
    }
}

/// Runs a simulator over a stimulus set bit-parallel, partitioning the set
/// into lane groups of up to [`sim::LANES`] stimuli.
///
/// A single group runs on the caller's simulator directly; larger sets fan
/// the groups out with [`par::par_map`] — one lane group per partition, on
/// a fork sharing the compiled code, with the parent's cancel token
/// re-installed (forks reset to inert) — and merge results in stimulus
/// order, so the output is identical at any thread count.
pub fn run_lane_groups(sim: &mut Simulator, stimuli: &[Stimulus]) -> Result<Vec<Trace>, SimError> {
    if stimuli.len() <= sim::LANES {
        return sim.run_batch(stimuli);
    }
    let groups: Vec<&[Stimulus]> = stimuli.chunks(sim::LANES).collect();
    let shared = &*sim;
    let results = par::par_map(&groups, |group| {
        let mut fork = shared.fork();
        fork.set_cancel(shared.cancel_token().clone());
        fork.run_batch(group)
    });
    let mut out = Vec::with_capacity(stimuli.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// [`run_lane_groups`], but in verdict mode: same partitioning, ordered
/// merge, and cancel propagation, with [`Simulator::run_batch_verdict`]
/// doing the per-group work.
pub fn run_lane_groups_verdict(
    sim: &mut Simulator,
    stimuli: &[Stimulus],
    observed: &SignalSet,
) -> Result<Vec<VerdictTrace>, SimError> {
    if stimuli.len() <= sim::LANES {
        return sim.run_batch_verdict(stimuli, observed);
    }
    let groups: Vec<&[Stimulus]> = stimuli.chunks(sim::LANES).collect();
    let shared = &*sim;
    let results = par::par_map(&groups, |group| {
        let mut fork = shared.fork();
        fork.set_cancel(shared.cancel_token().clone());
        fork.run_batch_verdict(group, observed)
    });
    let mut out = Vec::with_capacity(stimuli.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Runs the golden design over every stimulus in verdict mode, observing
/// only `target` — the reference values the screening pass compares mutants
/// to. The verdict-mode counterpart of [`golden_traces`].
///
/// # Errors
///
/// Propagates simulation errors from the golden design.
pub fn golden_verdicts(
    sim: &mut Simulator,
    stimuli: &[Stimulus],
    target: sim::SignalId,
) -> Result<Vec<VerdictTrace>, SimError> {
    let TraceMode::Verdict { observed } = screening_mode(target) else {
        unreachable!("screening_mode always builds verdict mode")
    };
    run_lane_groups_verdict(sim, stimuli, &observed)
}

/// Screens a mutant against precomputed golden verdicts: verdict-mode
/// co-simulation yielding one [`RunVerdict`] per stimulus. Divergence
/// verdicts, labels, and divergence cycles are identical to what
/// full-trace co-simulation ([`cosimulate_against`]) would produce —
/// verdict mode reproduces exactly the observed columns of the full trace —
/// at a fraction of the memory traffic.
///
/// # Errors
///
/// Propagates elaboration or simulation errors from the mutant (the same
/// errors, at the same points, as the full-trace pass).
pub fn screen_against(
    golden: &[VerdictTrace],
    target: sim::SignalId,
    mutant: &Module,
    stimuli: &[Stimulus],
) -> Result<Vec<RunVerdict>, SimError> {
    let mut mutant_sim = Simulator::new(mutant)?;
    screen_with(&mut mutant_sim, golden, target, stimuli)
}

/// [`screen_against`] with a caller-supplied mutant simulator.
///
/// # Errors
///
/// Propagates simulation errors (including cancellation) from the mutant.
pub fn screen_with(
    mutant_sim: &mut Simulator,
    golden: &[VerdictTrace],
    target: sim::SignalId,
    stimuli: &[Stimulus],
) -> Result<Vec<RunVerdict>, SimError> {
    assert_eq!(
        golden.len(),
        stimuli.len(),
        "one golden verdict per stimulus required"
    );
    let _span = obs::span("campaign.screen");
    let TraceMode::Verdict { observed } = screening_mode(target) else {
        unreachable!("screening_mode always builds verdict mode")
    };
    let verdicts = run_lane_groups_verdict(mutant_sim, stimuli, &observed)?;
    Ok(verdicts
        .into_iter()
        .zip(golden)
        .map(|(mv, gv)| RunVerdict {
            divergence_cycles: mv.divergence_cycles(gv, 0),
            records_elided: mv.records_elided,
        })
        .collect())
}

/// True when any screening run diverged — the verdict-mode counterpart of
/// [`is_observable`].
pub fn any_diverged(verdicts: &[RunVerdict]) -> bool {
    verdicts.iter().any(RunVerdict::diverged)
}

/// Runs the golden design on every stimulus — batched up to
/// [`sim::LANES`]-wide — producing the reference traces that
/// [`cosimulate_against`] compares mutants to.
///
/// A mutation campaign evaluates many mutants against the **same** golden
/// design and stimuli, so the golden traces are computed once up front and
/// shared across every candidate instead of being re-simulated per mutant.
///
/// # Errors
///
/// Propagates simulation errors from the golden design.
pub fn golden_traces(sim: &mut Simulator, stimuli: &[Stimulus]) -> Result<Vec<Trace>, SimError> {
    run_lane_groups(sim, stimuli)
}

/// Co-simulates a mutant against precomputed golden traces and labels every
/// run at the target output.
///
/// `golden[i]` must be the golden design's trace on `stimuli[i]` (as produced
/// by [`golden_traces`]); the two slices must have equal length.
///
/// # Errors
///
/// Propagates elaboration or simulation errors from the mutant.
pub fn cosimulate_against(
    golden: &[Trace],
    target: sim::SignalId,
    mutant: &Module,
    stimuli: &[Stimulus],
) -> Result<Vec<LabelledRun>, SimError> {
    assert_eq!(
        golden.len(),
        stimuli.len(),
        "one golden trace per stimulus required"
    );
    let mut mutant_sim = Simulator::new(mutant)?;
    cosimulate_with(&mut mutant_sim, golden, target, stimuli)
}

/// [`cosimulate_against`] with a caller-supplied mutant simulator.
///
/// Lets callers that already hold an elaborated (and possibly compiled)
/// simulator — e.g. the serving layer's design cache — skip the
/// parse→levelize→compile pass, and honours any [`sim::CancelToken`]
/// installed on it.
///
/// # Errors
///
/// Propagates simulation errors (including cancellation) from the mutant.
pub fn cosimulate_with(
    mutant_sim: &mut Simulator,
    golden: &[Trace],
    target: sim::SignalId,
    stimuli: &[Stimulus],
) -> Result<Vec<LabelledRun>, SimError> {
    assert_eq!(
        golden.len(),
        stimuli.len(),
        "one golden trace per stimulus required"
    );
    let _span = obs::span("campaign.cosim");
    let traces = run_lane_groups(mutant_sim, stimuli)?;
    let mut out = Vec::with_capacity(stimuli.len());
    for (mt, gt) in traces.into_iter().zip(golden) {
        let label = if mt.differs_at(gt, target) {
            TraceLabel::Failing
        } else {
            TraceLabel::Correct
        };
        out.push(LabelledRun {
            trace: mt,
            golden: gt.clone(),
            label,
            target,
        });
    }
    Ok(out)
}

/// Co-simulates golden and mutant designs on a set of stimuli and labels
/// every run against the target output.
///
/// Convenience wrapper over [`golden_traces`] + [`cosimulate_against`] for
/// one-off comparisons; campaigns should precompute the golden traces and
/// call [`cosimulate_against`] directly to avoid re-simulating the golden
/// design per mutant.
///
/// # Errors
///
/// Propagates elaboration or simulation errors from either design.
pub fn cosimulate(
    golden: &Module,
    mutant: &Module,
    target: &str,
    stimuli: &[Stimulus],
) -> Result<Vec<LabelledRun>, SimError> {
    let mut golden_sim = Simulator::new(golden)?;
    let target_id =
        golden_sim
            .netlist()
            .signal_id(target)
            .ok_or_else(|| SimError::UnknownSignal {
                name: target.to_owned(),
            })?;
    let golden = golden_traces(&mut golden_sim, stimuli)?;
    cosimulate_against(&golden, target_id, mutant, stimuli)
}

/// True when any run in `runs` is failing — i.e. the bug is observable at
/// the target.
pub fn is_observable(runs: &[LabelledRun]) -> bool {
    runs.iter().any(|r| r.label == TraceLabel::Failing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::TestbenchGen;

    fn module(src: &str) -> Module {
        verilog::parse(src).unwrap().top().clone()
    }

    #[test]
    fn detects_observable_divergence() {
        let golden = module("module m(input a, input b, output y);\nassign y = a & b;\nendmodule");
        let mutant = module("module m(input a, input b, output y);\nassign y = a | b;\nendmodule");
        let sim0 = Simulator::new(&golden).unwrap();
        let stimuli = TestbenchGen::new(1).generate_many(sim0.netlist(), 16, 4);
        let runs = cosimulate(&golden, &mutant, "y", &stimuli).unwrap();
        assert!(is_observable(&runs));
        assert!(runs.iter().any(|r| r.label == TraceLabel::Failing));
    }

    #[test]
    fn masked_bug_is_unobservable() {
        // y only looks at a; mutating the z logic cannot show at y.
        let golden = module(
            "module m(input a, input b, output y, output z);\nassign y = a;\nassign z = a & b;\nendmodule",
        );
        let mutant = module(
            "module m(input a, input b, output y, output z);\nassign y = a;\nassign z = a | b;\nendmodule",
        );
        let sim0 = Simulator::new(&golden).unwrap();
        let stimuli = TestbenchGen::new(2).generate_many(sim0.netlist(), 16, 4);
        let runs = cosimulate(&golden, &mutant, "y", &stimuli).unwrap();
        assert!(!is_observable(&runs));
    }

    #[test]
    fn identical_designs_never_fail() {
        let golden = module("module m(input a, output y);\nassign y = ~a;\nendmodule");
        let sim0 = Simulator::new(&golden).unwrap();
        let stimuli = TestbenchGen::new(3).generate_many(sim0.netlist(), 8, 3);
        let runs = cosimulate(&golden, &golden, "y", &stimuli).unwrap();
        assert!(runs.iter().all(|r| r.label == TraceLabel::Correct));
    }

    #[test]
    fn verdict_screening_matches_full_cosimulation() {
        let golden = module(
            "module m(input clk, input a, input b, output reg y);\n\
             always @(posedge clk) y <= a ^ b;\nendmodule",
        );
        let mutant = module(
            "module m(input clk, input a, input b, output reg y);\n\
             always @(posedge clk) y <= a & b;\nendmodule",
        );
        let mut golden_sim = Simulator::new(&golden).unwrap();
        let target = golden_sim.netlist().signal_id("y").unwrap();
        let stimuli = TestbenchGen::new(5).generate_many(golden_sim.netlist(), 12, 70);

        let gv = golden_verdicts(&mut golden_sim, &stimuli, target).unwrap();
        let verdicts = screen_against(&gv, target, &mutant, &stimuli).unwrap();
        let gt = golden_traces(&mut golden_sim, &stimuli).unwrap();
        let runs = cosimulate_against(&gt, target, &mutant, &stimuli).unwrap();

        assert_eq!(verdicts.len(), runs.len());
        assert_eq!(any_diverged(&verdicts), is_observable(&runs));
        for (v, r) in verdicts.iter().zip(&runs) {
            assert_eq!(v.label(), r.label);
            assert_eq!(v.divergence_cycles, r.failure_cycles());
            assert_eq!(v.first_divergence(), r.failure_cycles().first().copied());
        }
        assert!(matches!(
            screening_mode(target),
            TraceMode::Verdict { observed } if observed.ids() == [target]
        ));
    }

    #[test]
    fn unknown_target_errors() {
        let golden = module("module m(input a, output y);\nassign y = a;\nendmodule");
        let err = cosimulate(&golden, &golden, "ghost", &[]).unwrap_err();
        assert!(matches!(err, SimError::UnknownSignal { .. }));
    }
}
