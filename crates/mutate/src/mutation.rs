//! Mutation operators: the paper's three data-centric bug classes.
//!
//! - **Negation** — insert a wrong `~` in front of an operand, or remove an
//!   existing one;
//! - **Variable misuse** — replace a variable with another, preferring
//!   syntactically similar names (the classic copy-paste error);
//! - **Operation substitution** — replace a Boolean operator with a wrong
//!   one (e.g. `|` → `&`).
//!
//! One bug per mutated design; statement ids are preserved so the mutated
//! statement can be compared against the golden design.

use verilog::{Assignment, BinaryOp, Expr, Item, Module, Stmt, StmtId, UnaryOp};

/// The paper's three injected bug types.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum MutationKind {
    /// Insert or remove a `~` on an operand.
    Negation,
    /// Swap one variable reference for another.
    VariableMisuse,
    /// Swap one Boolean operator for another.
    OperationSubstitution,
}

impl MutationKind {
    /// All kinds, in the paper's Table III column order.
    pub const ALL: [MutationKind; 3] = [
        MutationKind::Negation,
        MutationKind::OperationSubstitution,
        MutationKind::VariableMisuse,
    ];
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MutationKind::Negation => "negation",
            MutationKind::VariableMisuse => "variable-misuse",
            MutationKind::OperationSubstitution => "operation-substitution",
        })
    }
}

/// A concrete mutation site inside a module.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MutationSite {
    /// Which statement is mutated.
    pub stmt: StmtId,
    /// The bug class.
    pub kind: MutationKind,
    /// Occurrence index of the mutated node inside the statement's RHS
    /// (idents for negation/misuse, binary ops for substitution).
    pub occurrence: usize,
    /// For [`MutationKind::VariableMisuse`]: the replacement signal name.
    pub replacement: Option<String>,
    /// For [`MutationKind::OperationSubstitution`]: the replacement operator.
    pub new_op: Option<BinaryOp>,
}

/// Enumerates every applicable mutation site in `module`, optionally
/// restricted to a statement set (e.g. the static slice of a target).
pub fn enumerate_sites(
    module: &Module,
    restrict: Option<&std::collections::BTreeSet<StmtId>>,
) -> Vec<MutationSite> {
    let mut out = Vec::new();
    for a in module.assignments() {
        if let Some(r) = restrict {
            if !r.contains(&a.id) {
                continue;
            }
        }
        // Negation + misuse: one site per ident occurrence in the RHS.
        let idents = count_idents(&a.rhs);
        for occ in 0..idents {
            out.push(MutationSite {
                stmt: a.id,
                kind: MutationKind::Negation,
                occurrence: occ,
                replacement: None,
                new_op: None,
            });
            for repl in misuse_candidates(module, a, occ) {
                out.push(MutationSite {
                    stmt: a.id,
                    kind: MutationKind::VariableMisuse,
                    occurrence: occ,
                    replacement: Some(repl),
                    new_op: None,
                });
            }
        }
        // Operation substitution: one site per substitutable binary op.
        let ops = collect_ops(&a.rhs);
        for (occ, op) in ops.iter().enumerate() {
            for new_op in substitutions_for(*op) {
                out.push(MutationSite {
                    stmt: a.id,
                    kind: MutationKind::OperationSubstitution,
                    occurrence: occ,
                    replacement: None,
                    new_op: Some(new_op),
                });
            }
        }
    }
    out
}

/// Applies a mutation site to a module, returning the mutated clone.
///
/// Statement ids are preserved. Returns `None` when the site does not apply
/// (stale occurrence index, unknown statement).
pub fn apply(module: &Module, site: &MutationSite) -> Option<Module> {
    let mut mutated = module.clone();
    let mut applied = false;
    for_each_assignment_mut(&mut mutated, |a| {
        if a.id != site.stmt || applied {
            return None;
        }
        applied = match site.kind {
            MutationKind::Negation => toggle_negation(&mut a.rhs, &mut site.occurrence.clone()),
            MutationKind::VariableMisuse => {
                let repl = site.replacement.clone().unwrap_or_default();
                rename_ident(&mut a.rhs, &mut site.occurrence.clone(), &repl)
            }
            MutationKind::OperationSubstitution => {
                let new_op = site.new_op?;
                replace_op(&mut a.rhs, &mut site.occurrence.clone(), new_op)
            }
        }
        .is_some();
        Some(())
    });
    applied.then_some(mutated)
}

/// Candidate same-width replacement names for the `occ`-th ident of `a`'s
/// RHS, ranked by name similarity (most similar first, at most 3).
fn misuse_candidates(module: &Module, a: &Assignment, occ: usize) -> Vec<String> {
    let Some(original) = nth_ident(&a.rhs, occ) else {
        return Vec::new();
    };
    let width = module.width_of(&original).unwrap_or(1);
    let mut cands: Vec<(usize, String)> = Vec::new();
    let mut consider = |name: &str| {
        if name == original || name == a.lhs.base {
            return;
        }
        let lower = name.to_ascii_lowercase();
        if lower == "clk" || lower == "clock" {
            return;
        }
        if module.width_of(name) == Some(width) {
            cands.push((levenshtein(&original, name), name.to_owned()));
        }
    };
    for p in &module.ports {
        consider(&p.name);
    }
    for d in &module.decls {
        consider(&d.name);
    }
    cands.sort();
    cands.truncate(3);
    cands.into_iter().map(|(_, n)| n).collect()
}

/// Wrong-operator substitutions the paper's campaign draws from.
fn substitutions_for(op: BinaryOp) -> Vec<BinaryOp> {
    match op {
        BinaryOp::And => vec![BinaryOp::Or, BinaryOp::Xor],
        BinaryOp::Or => vec![BinaryOp::And, BinaryOp::Xor],
        BinaryOp::Xor => vec![BinaryOp::And, BinaryOp::Or, BinaryOp::Xnor],
        BinaryOp::Xnor => vec![BinaryOp::Xor],
        BinaryOp::LogAnd => vec![BinaryOp::LogOr],
        BinaryOp::LogOr => vec![BinaryOp::LogAnd],
        BinaryOp::Eq => vec![BinaryOp::Neq],
        BinaryOp::Neq => vec![BinaryOp::Eq],
        BinaryOp::Lt => vec![BinaryOp::Le, BinaryOp::Ge],
        BinaryOp::Le => vec![BinaryOp::Lt, BinaryOp::Gt],
        BinaryOp::Gt => vec![BinaryOp::Ge, BinaryOp::Le],
        BinaryOp::Ge => vec![BinaryOp::Gt, BinaryOp::Lt],
        BinaryOp::Add => vec![BinaryOp::Sub],
        BinaryOp::Sub => vec![BinaryOp::Add],
        _ => Vec::new(),
    }
}

// ---- AST walking helpers ----

/// Calls `f` on every assignment of the module (mutably). `f` returning
/// `Some(())` is ignored; it exists so callers can use `?` internally.
pub fn for_each_assignment_mut(
    module: &mut Module,
    mut f: impl FnMut(&mut Assignment) -> Option<()>,
) {
    fn walk(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Assignment) -> Option<()>) {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    let _ = f(a);
                }
                Stmt::If(i) => {
                    walk(&mut i.then_branch, f);
                    walk(&mut i.else_branch, f);
                }
                Stmt::Case(c) => {
                    for arm in &mut c.arms {
                        walk(&mut arm.body, f);
                    }
                    walk(&mut c.default, f);
                }
            }
        }
    }
    for item in &mut module.items {
        match item {
            Item::Assign(a) => {
                let _ = f(a);
            }
            Item::Always(b) => walk(&mut b.body, &mut f),
        }
    }
}

fn count_idents(e: &Expr) -> usize {
    match e {
        Expr::Ident { .. } => 1,
        Expr::Literal { .. } => 0,
        Expr::Unary { operand, .. } => count_idents(operand),
        Expr::Binary { lhs, rhs, .. } => count_idents(lhs) + count_idents(rhs),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => count_idents(cond) + count_idents(then_expr) + count_idents(else_expr),
        Expr::Index { index, .. } => 1 + count_idents(index),
        Expr::Part { .. } => 1,
        Expr::Concat { parts, .. } => parts.iter().map(count_idents).sum(),
        Expr::Repeat { inner, .. } => count_idents(inner),
    }
}

fn nth_ident(e: &Expr, n: usize) -> Option<String> {
    let mut counter = n;
    find_ident(e, &mut counter)
}

fn find_ident(e: &Expr, counter: &mut usize) -> Option<String> {
    let take = |name: &str, counter: &mut usize| {
        if *counter == 0 {
            Some(name.to_owned())
        } else {
            *counter -= 1;
            None
        }
    };
    match e {
        Expr::Ident { name, .. } => take(name, counter),
        Expr::Literal { .. } => None,
        Expr::Unary { operand, .. } => find_ident(operand, counter),
        Expr::Binary { lhs, rhs, .. } => {
            find_ident(lhs, counter).or_else(|| find_ident(rhs, counter))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => find_ident(cond, counter)
            .or_else(|| find_ident(then_expr, counter))
            .or_else(|| find_ident(else_expr, counter)),
        Expr::Index { base, index, .. } => {
            take(base, counter).or_else(|| find_ident(index, counter))
        }
        Expr::Part { base, .. } => take(base, counter),
        Expr::Concat { parts, .. } => parts.iter().find_map(|p| find_ident(p, counter)),
        Expr::Repeat { inner, .. } => find_ident(inner, counter),
    }
}

/// Toggles `~` on the `counter`-th ident occurrence (pre-order).
fn toggle_negation(e: &mut Expr, counter: &mut usize) -> Option<()> {
    // Removal case: `~ident` where the ident is the targeted occurrence.
    if let Expr::Unary {
        op: UnaryOp::Not,
        operand,
        ..
    } = e
    {
        if matches!(**operand, Expr::Ident { .. }) {
            if *counter == 0 {
                *e = (**operand).clone();
                return Some(());
            }
            *counter -= 1;
            return None;
        }
    }
    // A bit/part select counts as one occurrence at its base; negating it
    // wraps the whole select expression.
    if matches!(e, Expr::Index { .. } | Expr::Part { .. }) {
        if *counter == 0 {
            let span = e.span();
            let inner = e.clone();
            *e = Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(inner),
                span,
            };
            return Some(());
        }
        *counter -= 1;
        if let Expr::Index { index, .. } = e {
            return toggle_negation(index, counter);
        }
        return None;
    }
    match e {
        Expr::Ident { name, span } => {
            if *counter == 0 {
                let ident = Expr::Ident {
                    name: name.clone(),
                    span: *span,
                };
                *e = Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(ident),
                    span: *span,
                };
                Some(())
            } else {
                *counter -= 1;
                None
            }
        }
        Expr::Literal { .. } => None,
        Expr::Unary { operand, .. } => toggle_negation(operand, counter),
        Expr::Binary { lhs, rhs, .. } => {
            toggle_negation(lhs, counter).or_else(|| toggle_negation(rhs, counter))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => toggle_negation(cond, counter)
            .or_else(|| toggle_negation(then_expr, counter))
            .or_else(|| toggle_negation(else_expr, counter)),
        // Handled by the wrap-case above.
        Expr::Index { .. } | Expr::Part { .. } => None,
        Expr::Concat { parts, .. } => parts.iter_mut().find_map(|p| toggle_negation(p, counter)),
        Expr::Repeat { inner, .. } => toggle_negation(inner, counter),
    }
}

/// Renames the `counter`-th ident occurrence to `replacement`.
fn rename_ident(e: &mut Expr, counter: &mut usize, replacement: &str) -> Option<()> {
    match e {
        Expr::Ident { name, .. } => {
            if *counter == 0 {
                *name = replacement.to_owned();
                Some(())
            } else {
                *counter -= 1;
                None
            }
        }
        Expr::Literal { .. } => None,
        Expr::Unary { operand, .. } => rename_ident(operand, counter, replacement),
        Expr::Binary { lhs, rhs, .. } => rename_ident(lhs, counter, replacement)
            .or_else(|| rename_ident(rhs, counter, replacement)),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => rename_ident(cond, counter, replacement)
            .or_else(|| rename_ident(then_expr, counter, replacement))
            .or_else(|| rename_ident(else_expr, counter, replacement)),
        Expr::Index { base, index, .. } => {
            if *counter == 0 {
                *base = replacement.to_owned();
                Some(())
            } else {
                *counter -= 1;
                rename_ident(index, counter, replacement)
            }
        }
        Expr::Part { base, .. } => {
            if *counter == 0 {
                *base = replacement.to_owned();
                Some(())
            } else {
                *counter -= 1;
                None
            }
        }
        Expr::Concat { parts, .. } => parts
            .iter_mut()
            .find_map(|p| rename_ident(p, counter, replacement)),
        Expr::Repeat { inner, .. } => rename_ident(inner, counter, replacement),
    }
}

fn collect_ops(e: &Expr) -> Vec<BinaryOp> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<BinaryOp>) {
        match e {
            Expr::Binary { op, lhs, rhs, .. } => {
                if !substitutions_for(*op).is_empty() {
                    out.push(*op);
                }
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Unary { operand, .. } => walk(operand, out),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                walk(cond, out);
                walk(then_expr, out);
                walk(else_expr, out);
            }
            Expr::Index { index, .. } => walk(index, out),
            Expr::Concat { parts, .. } => parts.iter().for_each(|p| walk(p, out)),
            Expr::Repeat { inner, .. } => walk(inner, out),
            Expr::Ident { .. } | Expr::Literal { .. } | Expr::Part { .. } => {}
        }
    }
    walk(e, &mut out);
    out
}

/// Replaces the `counter`-th substitutable binary op (pre-order).
fn replace_op(e: &mut Expr, counter: &mut usize, new_op: BinaryOp) -> Option<()> {
    match e {
        Expr::Binary { op, lhs, rhs, .. } => {
            if !substitutions_for(*op).is_empty() {
                if *counter == 0 {
                    *op = new_op;
                    return Some(());
                }
                *counter -= 1;
            }
            replace_op(lhs, counter, new_op).or_else(|| replace_op(rhs, counter, new_op))
        }
        Expr::Unary { operand, .. } => replace_op(operand, counter, new_op),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => replace_op(cond, counter, new_op)
            .or_else(|| replace_op(then_expr, counter, new_op))
            .or_else(|| replace_op(else_expr, counter, new_op)),
        Expr::Index { index, .. } => replace_op(index, counter, new_op),
        Expr::Concat { parts, .. } => parts
            .iter_mut()
            .find_map(|p| replace_op(p, counter, new_op)),
        Expr::Repeat { inner, .. } => replace_op(inner, counter, new_op),
        Expr::Ident { .. } | Expr::Literal { .. } | Expr::Part { .. } => None,
    }
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        verilog::parse(src).unwrap().top().clone()
    }

    const SRC: &str =
        "module m(input a, input b, input ab, output y);\nassign y = a & ~b;\nendmodule";

    #[test]
    fn negation_insert_and_remove() {
        let m = module(SRC);
        // Occurrence 0 = `a`: insert a not.
        let site = MutationSite {
            stmt: StmtId(0),
            kind: MutationKind::Negation,
            occurrence: 0,
            replacement: None,
            new_op: None,
        };
        let mutated = apply(&m, &site).unwrap();
        let printed = verilog::print_expr(&mutated.assignments()[0].rhs);
        assert_eq!(printed, "((~a) & (~b))");
        // Occurrence 1 = `b` under a not: remove it.
        let site = MutationSite {
            occurrence: 1,
            ..site
        };
        let mutated = apply(&m, &site).unwrap();
        let printed = verilog::print_expr(&mutated.assignments()[0].rhs);
        assert_eq!(printed, "(a & b)");
    }

    #[test]
    fn operation_substitution() {
        let m = module(SRC);
        let site = MutationSite {
            stmt: StmtId(0),
            kind: MutationKind::OperationSubstitution,
            occurrence: 0,
            replacement: None,
            new_op: Some(BinaryOp::Or),
        };
        let mutated = apply(&m, &site).unwrap();
        let printed = verilog::print_expr(&mutated.assignments()[0].rhs);
        assert_eq!(printed, "(a | (~b))");
    }

    #[test]
    fn variable_misuse_prefers_similar_names() {
        let m = module(SRC);
        let sites = enumerate_sites(&m, None);
        let misuse: Vec<_> = sites
            .iter()
            .filter(|s| s.kind == MutationKind::VariableMisuse && s.occurrence == 0)
            .collect();
        // For `a`, the closest names are `b` (distance 1) and `ab` (1).
        assert!(!misuse.is_empty());
        let first = misuse[0].replacement.as_deref().unwrap();
        assert!(first == "b" || first == "ab");
        let mutated = apply(&m, misuse[0]).unwrap();
        let printed = verilog::print_expr(&mutated.assignments()[0].rhs);
        assert!(printed.contains(first));
    }

    #[test]
    fn statement_ids_preserved_after_mutation() {
        let m = module(
            "module m(input a, input b, output y, output z);\nassign y = a & b;\nassign z = a | b;\nendmodule",
        );
        let site = MutationSite {
            stmt: StmtId(1),
            kind: MutationKind::Negation,
            occurrence: 0,
            replacement: None,
            new_op: None,
        };
        let mutated = apply(&m, &site).unwrap();
        let ids: Vec<_> = mutated.assignments().iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![StmtId(0), StmtId(1)]);
        // Only statement 1 changed.
        assert_eq!(m.assignments()[0], mutated.assignments()[0]);
        assert_ne!(m.assignments()[1], mutated.assignments()[1]);
    }

    #[test]
    fn mutants_reparse() {
        let m = module(SRC);
        for site in enumerate_sites(&m, None) {
            let Some(mutated) = apply(&m, &site) else {
                continue;
            };
            let src = verilog::print_module(&mutated);
            verilog::parse(&src).unwrap_or_else(|e| panic!("mutant failed to reparse: {e}\n{src}"));
        }
    }

    #[test]
    fn restriction_filters_statements() {
        let m = module(
            "module m(input a, input b, output y, output z);\nassign y = a & b;\nassign z = a | b;\nendmodule",
        );
        let only_first: std::collections::BTreeSet<_> = [StmtId(0)].into_iter().collect();
        let sites = enumerate_sites(&m, Some(&only_first));
        assert!(sites.iter().all(|s| s.stmt == StmtId(0)));
        assert!(!sites.is_empty());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("req1", "req2"), 1);
        assert_eq!(levenshtein("stall", "stall"), 0);
        assert_eq!(levenshtein("a", "xyz"), 3);
    }

    #[test]
    fn misuse_never_suggests_lhs_or_clock() {
        let m = module(
            "module m(input clk, input d, input e, output reg q);\nalways @(posedge clk) q <= d & e;\nendmodule",
        );
        for s in enumerate_sites(&m, None) {
            if let Some(r) = &s.replacement {
                assert_ne!(r, "q");
                assert_ne!(r, "clk");
            }
        }
    }
}
