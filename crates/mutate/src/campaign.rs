//! Bug-injection campaigns: sample mutation sites, build mutants, and
//! classify observability — the experimental setup behind Table III.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

use crate::mutation::{apply, enumerate_sites, MutationKind, MutationSite};
use crate::observe::{
    any_diverged, cosimulate_against, cosimulate_with, golden_traces, golden_verdicts,
    is_observable, screen_with, LabelledRun,
};
use cdfg::Slice;
use sim::{SimError, Simulator, Stimulus, StmtExec, TestbenchGen, Value};
use verilog::Module;

/// Sites co-simulated per parallel wave. A fixed constant: waves bound the
/// work wasted past the budget without letting the worker count influence
/// which sites get considered.
const WAVE: usize = 8;

/// Candidate mutation sites considered (after slice restriction).
static SITES: obs::LazyCounter = obs::LazyCounter::new("campaign.sites_enumerated");
/// Mutants accepted into the output (within budget, deduplicated).
static PRODUCED: obs::LazyCounter = obs::LazyCounter::new("campaign.mutants_produced");
/// Accepted mutants whose bug symptomatized at the target.
static OBSERVABLE: obs::LazyCounter = obs::LazyCounter::new("campaign.mutants_observable");
/// Candidates rejected as source-level duplicates.
static DUPLICATES: obs::LazyCounter = obs::LazyCounter::new("campaign.duplicates");
/// Candidates that failed to elaborate/simulate or were no-ops.
static SKIPPED: obs::LazyCounter = obs::LazyCounter::new("campaign.skipped");
/// First cycle at which a failing co-simulation run diverged.
static DIVERGENCE: obs::LazyHistogram = obs::LazyHistogram::new("campaign.divergence_cycle");
/// Fraction of batch-engine lanes occupied by campaign stimuli
/// (1.0 = every 64-lane group runs full).
static BATCH_FILL: obs::LazyGauge = obs::LazyGauge::new("campaign.batch_fill_ratio");
/// Bytes of trace the verdict screening pass declined to materialize:
/// elided `StmtExec` records plus the unobserved part of every per-cycle
/// snapshot, summed over golden-verdict and candidate-screening runs.
/// Mutants the campaign keeps are re-simulated in full afterwards, so the
/// end-to-end saving is this figure minus the kept fraction.
static TRACE_BYTES_ELIDED: obs::LazyCounter = obs::LazyCounter::new("campaign.trace_bytes_elided");
/// Lane fill of every verdict-pass batch group (64 = full batch).
static VERDICT_LANES: obs::LazyHistogram = obs::LazyHistogram::new("campaign.verdict_pass_lanes");

/// Records the lane fills a verdict pass over `n` stimuli produces (maximal
/// [`sim::LANES`]-lane groups plus the remainder).
fn record_verdict_lanes(n: usize) {
    let mut rest = n;
    while rest > 0 {
        let take = rest.min(sim::LANES);
        VERDICT_LANES.record(take as u64);
        rest -= take;
    }
}

/// Bytes of full-trace product a verdict pass elided: the records it never
/// materialized plus the unobserved `nsig - nobs` snapshot values per cycle
/// across `nruns` runs of `cycles` cycles.
fn elided_bytes(records_elided: u64, nruns: usize, cycles: usize, nsig: usize, nobs: usize) -> u64 {
    let per_cycle_values = (nsig.saturating_sub(nobs) * std::mem::size_of::<Value>()) as u64;
    records_elided * std::mem::size_of::<StmtExec>() as u64
        + (nruns * cycles) as u64 * per_cycle_values
}

/// How many mutants of each kind a campaign should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BugBudget {
    /// Negation mutants.
    pub negation: usize,
    /// Operation-substitution mutants.
    pub operation: usize,
    /// Variable-misuse mutants.
    pub misuse: usize,
}

impl BugBudget {
    /// Total mutants requested.
    pub fn total(&self) -> usize {
        self.negation + self.operation + self.misuse
    }

    /// The budget for one kind.
    pub fn for_kind(&self, kind: MutationKind) -> usize {
        match kind {
            MutationKind::Negation => self.negation,
            MutationKind::OperationSubstitution => self.operation,
            MutationKind::VariableMisuse => self.misuse,
        }
    }
}

/// One injected-bug experiment: the mutant and its labelled co-simulation runs.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated module (statement ids match the golden design).
    pub module: Module,
    /// Pretty-printed mutant source.
    pub source: String,
    /// The mutation that was injected.
    pub site: MutationSite,
    /// Labelled runs against the golden design (mutant + golden traces).
    pub runs: Vec<LabelledRun>,
    /// Whether the bug symptomatized at the target in any run.
    pub observable: bool,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    seed: u64,
    cycles: usize,
    runs_per_mutant: usize,
    restrict_to_slice: bool,
    hold_probability: f64,
}

impl Campaign {
    /// Creates a campaign with the defaults used by the Table III harness:
    /// many short, calm stimuli (40 runs × 16 cycles, hold probability 0.8)
    /// so that a bug is typically *masked* in some runs — the correct-trace
    /// set `T_c` the explainer compares against — and sites restricted to
    /// the target's static slice (bugs outside the cone can never be
    /// observable at the target output).
    pub fn new(seed: u64) -> Self {
        Campaign {
            seed,
            cycles: 16,
            runs_per_mutant: 40,
            restrict_to_slice: true,
            hold_probability: 0.8,
        }
    }

    /// Overrides the stimulus hold probability (temporal correlation of the
    /// random inputs; higher = calmer, more directed-looking stimulus).
    pub fn with_hold_probability(mut self, p: f64) -> Self {
        self.hold_probability = p;
        self
    }

    /// Overrides the stimulus length.
    pub fn with_cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles;
        self
    }

    /// Overrides the number of independent runs per mutant.
    pub fn with_runs_per_mutant(mut self, runs: usize) -> Self {
        self.runs_per_mutant = runs;
        self
    }

    /// Allow mutations anywhere in the design, not only the target's slice.
    pub fn without_slice_restriction(mut self) -> Self {
        self.restrict_to_slice = false;
        self
    }

    /// Campaign setup shared by both flows: vetted sites, the golden
    /// simulator, the resolved target, and the seeded stimulus set.
    fn prelude(&self, golden: &Module, target: &str) -> Result<Prelude, SimError> {
        let restrict: Option<BTreeSet<_>> = if self.restrict_to_slice {
            Some(Slice::of_target(golden, target).stmts)
        } else {
            None
        };
        let all_sites = enumerate_sites(golden, restrict.as_ref());
        SITES.add(all_sites.len() as u64);
        let golden_sim = Simulator::new(golden)?;
        let target_id =
            golden_sim
                .netlist()
                .signal_id(target)
                .ok_or_else(|| SimError::UnknownSignal {
                    name: target.to_owned(),
                })?;
        let stimuli: Vec<Stimulus> = TestbenchGen::new(self.seed ^ 0xD1CE_F00D)
            .with_hold_probability(self.hold_probability)
            .generate_many(golden_sim.netlist(), self.cycles, self.runs_per_mutant);
        let lane_groups = stimuli.len().div_ceil(sim::LANES).max(1);
        BATCH_FILL.set(stimuli.len() as f64 / (lane_groups * sim::LANES) as f64);
        let golden_source = verilog::print_module(golden);
        Ok(Prelude {
            all_sites,
            golden_sim,
            target_id,
            stimuli,
            golden_source,
        })
    }

    /// Runs the campaign: inject up to `budget` bugs per kind into `golden`
    /// and co-simulate each against the target output.
    ///
    /// This is the **two-pass verdict flow**. Pass 1 screens golden and
    /// every candidate mutant through the batch engine in
    /// [`sim::TraceMode::Verdict`] — no execution records, target-output
    /// snapshots only — which is all the accept/reject machinery
    /// (observability, dedup, budget, divergence cycles) reads. Pass 2
    /// re-simulates with full traces **only the mutants the campaign
    /// keeps**, so full-trace cost scales with kept runs, not attempted
    /// runs. The result is bit-identical to
    /// [`run_single_pass`](Self::run_single_pass) — the differential suite
    /// proves it at 1/2/8 threads.
    ///
    /// Candidate mutants are built and screened in parallel, in fixed-size
    /// waves of shuffled sites. The wave partitioning and the in-order
    /// merge depend only on the seed — never on the worker count — so the
    /// returned mutant list is identical at any thread count (and to a
    /// fully serial pass). Thread count follows `VERIBUG_THREADS` /
    /// `RAYON_NUM_THREADS` (see [`par::max_threads`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors. Mutants that fail to elaborate or
    /// simulate (e.g. a misuse creating a combinational loop) are skipped
    /// rather than failing the campaign — verdict mode reports exactly the
    /// errors full-trace simulation would, so the skip set is identical.
    pub fn run(
        &self,
        golden: &Module,
        target: &str,
        budget: &BugBudget,
    ) -> Result<Vec<Mutant>, SimError> {
        let _span = obs::span("campaign");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let Prelude {
            all_sites,
            mut golden_sim,
            target_id,
            stimuli,
            golden_source,
        } = self.prelude(golden, target)?;
        let nsig = golden_sim.netlist().signal_count();

        // Pass 1: screen golden + every candidate in verdict mode. The
        // golden design is simulated exactly once per stimulus; every
        // candidate in every wave compares against these shared verdicts.
        let golden_vs = {
            let _g = obs::span("campaign.golden_verdict");
            golden_verdicts(&mut golden_sim, &stimuli, target_id)?
        };
        record_verdict_lanes(stimuli.len());
        TRACE_BYTES_ELIDED.add(elided_bytes(
            golden_vs.iter().map(|v| v.records_elided).sum(),
            stimuli.len(),
            self.cycles,
            nsig,
            1,
        ));

        /// One screened-and-accepted candidate awaiting its full-trace
        /// pass. Keeps the pass-1 simulator so pass 2 can [`Simulator::fork`]
        /// it instead of re-elaborating the mutant.
        struct Accepted {
            module: Module,
            source: String,
            site: MutationSite,
            sim: Simulator,
            observable: bool,
        }
        let mut accepted: Vec<Accepted> = Vec::new();
        for kind in MutationKind::ALL {
            let mut sites: Vec<&MutationSite> =
                all_sites.iter().filter(|s| s.kind == kind).collect();
            shuffle(&mut sites, &mut rng);
            let want = budget.for_kind(kind);
            let mut produced = 0;
            let mut seen_sources: BTreeSet<String> = BTreeSet::new();
            for wave in sites.chunks(WAVE) {
                if produced >= want {
                    break;
                }
                // Parallel part: everything that depends only on the site.
                let _wave_span = obs::span("campaign.wave");
                let candidates = par::par_map(wave, |site| {
                    let module = apply(golden, site)?;
                    let source = verilog::print_module(&module);
                    if source == golden_source {
                        return None; // mutation was a source-level no-op
                    }
                    // A mutation may e.g. create a combinational loop; skip.
                    // Verdict mode hits the same errors full mode would, so
                    // this skip set matches the single-pass flow's.
                    let mut sim = Simulator::new(&module).ok()?;
                    let verdicts = screen_with(&mut sim, &golden_vs, target_id, &stimuli).ok()?;
                    let observable = any_diverged(&verdicts);
                    Some((module, source, sim, verdicts, observable))
                });
                // Sequential merge in site order: duplicate and budget
                // decisions replay exactly as a serial pass would.
                for (site, cand) in wave.iter().zip(candidates) {
                    if produced >= want {
                        break;
                    }
                    let Some((module, source, sim, verdicts, observable)) = cand else {
                        SKIPPED.incr();
                        continue;
                    };
                    record_verdict_lanes(stimuli.len());
                    TRACE_BYTES_ELIDED.add(elided_bytes(
                        verdicts.iter().map(|v| v.records_elided).sum(),
                        stimuli.len(),
                        self.cycles,
                        nsig,
                        1,
                    ));
                    if !seen_sources.insert(source.clone()) {
                        DUPLICATES.incr();
                        continue; // duplicate mutant
                    }
                    PRODUCED.incr();
                    if observable {
                        OBSERVABLE.incr();
                        if obs::enabled() {
                            for v in verdicts.iter().filter(|v| v.diverged()) {
                                if let Some(first) = v.first_divergence() {
                                    DIVERGENCE.record(u64::from(first));
                                }
                            }
                        }
                    }
                    accepted.push(Accepted {
                        module,
                        source,
                        site: (*site).clone(),
                        sim,
                        observable,
                    });
                    produced += 1;
                }
            }
        }

        // Pass 2: full traces for the kept mutants only. Golden full traces
        // are computed lazily — a campaign that keeps nothing never pays
        // for them at all.
        if accepted.is_empty() {
            return Ok(Vec::new());
        }
        let golden_runs = {
            let _g = obs::span("campaign.golden");
            golden_traces(&mut golden_sim, &stimuli)?
        };
        let _full_span = obs::span("campaign.full_pass");
        let full = par::par_map(&accepted, |a| {
            // Forking reuses the screened mutant's compiled artifacts —
            // pass 2 pays for trace production, never for re-elaboration.
            cosimulate_with(&mut a.sim.fork(), &golden_runs, target_id, &stimuli)
        });
        let mut out = Vec::with_capacity(accepted.len());
        for (a, runs) in accepted.into_iter().zip(full) {
            // Screening already proved this mutant simulates; re-running it
            // with full traces cannot newly fail.
            let runs = runs?;
            debug_assert_eq!(a.observable, is_observable(&runs));
            out.push(Mutant {
                module: a.module,
                source: a.source,
                site: a.site,
                runs,
                observable: a.observable,
            });
        }
        Ok(out)
    }

    /// The PR 6-era single-pass flow: every candidate is co-simulated with
    /// full traces, kept or not. Retained verbatim as the differential
    /// oracle — the suite in `crates/bench/tests/differential.rs` proves
    /// [`run`](Self::run) bit-identical to this at 1/2/8 threads — and for
    /// benchmarking the elision win.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_single_pass(
        &self,
        golden: &Module,
        target: &str,
        budget: &BugBudget,
    ) -> Result<Vec<Mutant>, SimError> {
        let _span = obs::span("campaign");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let Prelude {
            all_sites,
            mut golden_sim,
            target_id,
            stimuli,
            golden_source,
        } = self.prelude(golden, target)?;
        // The golden design is simulated exactly once per stimulus; every
        // candidate mutant in every wave compares against these shared
        // traces instead of re-running the golden design.
        let golden_runs = {
            let _g = obs::span("campaign.golden");
            golden_traces(&mut golden_sim, &stimuli)?
        };

        let mut out = Vec::new();
        for kind in MutationKind::ALL {
            let mut sites: Vec<&MutationSite> =
                all_sites.iter().filter(|s| s.kind == kind).collect();
            shuffle(&mut sites, &mut rng);
            let want = budget.for_kind(kind);
            let mut produced = 0;
            let mut seen_sources: BTreeSet<String> = BTreeSet::new();
            for wave in sites.chunks(WAVE) {
                if produced >= want {
                    break;
                }
                // Parallel part: everything that depends only on the site.
                let _wave_span = obs::span("campaign.wave");
                let candidates = par::par_map(wave, |site| {
                    let module = apply(golden, site)?;
                    let source = verilog::print_module(&module);
                    if source == golden_source {
                        return None; // mutation was a source-level no-op
                    }
                    // A mutation may e.g. create a combinational loop; skip.
                    let runs =
                        cosimulate_against(&golden_runs, target_id, &module, &stimuli).ok()?;
                    let observable = is_observable(&runs);
                    Some((module, source, runs, observable))
                });
                // Sequential merge in site order: duplicate and budget
                // decisions replay exactly as a serial pass would.
                for (site, cand) in wave.iter().zip(candidates) {
                    if produced >= want {
                        break;
                    }
                    let Some((module, source, runs, observable)) = cand else {
                        SKIPPED.incr();
                        continue;
                    };
                    if !seen_sources.insert(source.clone()) {
                        DUPLICATES.incr();
                        continue; // duplicate mutant
                    }
                    PRODUCED.incr();
                    if observable {
                        OBSERVABLE.incr();
                        if obs::enabled() {
                            for run in runs.iter().filter(|r| r.label == sim::TraceLabel::Failing) {
                                if let Some(&first) = run.failure_cycles().first() {
                                    DIVERGENCE.record(u64::from(first));
                                }
                            }
                        }
                    }
                    out.push(Mutant {
                        module,
                        source,
                        site: (*site).clone(),
                        runs,
                        observable,
                    });
                    produced += 1;
                }
            }
        }
        Ok(out)
    }
}

/// Campaign setup shared by [`Campaign::run`] and
/// [`Campaign::run_single_pass`], so the two flows cannot drift on sites,
/// stimuli, or target resolution.
struct Prelude {
    all_sites: Vec<MutationSite>,
    golden_sim: Simulator,
    target_id: sim::SignalId,
    stimuli: Vec<Stimulus>,
    golden_source: String,
}

/// Fisher–Yates shuffle (avoids pulling in rand's slice extension trait).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARB: &str = "\
module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);
  reg state;
  always @(posedge clk) state <= req1 ^ req2;
  always @(*) begin
    if (state) gnt1 = req1 & ~req2;
    else gnt1 = req1 | req2;
    gnt2 = req2 & ~req1;
  end
endmodule
";

    fn golden() -> Module {
        verilog::parse(ARB).unwrap().top().clone()
    }

    #[test]
    fn campaign_produces_budgeted_mutants() {
        let budget = BugBudget {
            negation: 2,
            operation: 2,
            misuse: 2,
        };
        let mutants = Campaign::new(7).run(&golden(), "gnt1", &budget).unwrap();
        assert!(!mutants.is_empty());
        assert!(mutants.len() <= budget.total());
        for kind in MutationKind::ALL {
            let n = mutants.iter().filter(|m| m.site.kind == kind).count();
            assert!(n <= budget.for_kind(kind));
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let budget = BugBudget {
            negation: 2,
            operation: 1,
            misuse: 2,
        };
        let a = Campaign::new(11).run(&golden(), "gnt1", &budget).unwrap();
        let b = Campaign::new(11).run(&golden(), "gnt1", &budget).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.observable, y.observable);
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let budget = BugBudget {
            negation: 3,
            operation: 2,
            misuse: 3,
        };
        let runs: Vec<Vec<Mutant>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                par::with_threads(threads, || {
                    Campaign::new(23).run(&golden(), "gnt1", &budget).unwrap()
                })
            })
            .collect();
        let single = &runs[0];
        assert!(!single.is_empty());
        for (threads, r) in [2usize, 8].iter().zip(&runs[1..]) {
            assert_eq!(r.len(), single.len(), "{threads} threads");
            for (a, b) in single.iter().zip(r) {
                assert_eq!(a.source, b.source, "{threads} threads");
                assert_eq!(a.site, b.site, "{threads} threads");
                assert_eq!(a.observable, b.observable, "{threads} threads");
                assert_eq!(a.runs.len(), b.runs.len(), "{threads} threads");
                for (ra, rb) in a.runs.iter().zip(&b.runs) {
                    assert_eq!(ra.label, rb.label, "{threads} threads");
                    assert_eq!(ra.trace, rb.trace, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn mutated_statement_is_inside_target_slice() {
        let budget = BugBudget {
            negation: 3,
            operation: 3,
            misuse: 3,
        };
        let slice = Slice::of_target(&golden(), "gnt1");
        let mutants = Campaign::new(13).run(&golden(), "gnt1", &budget).unwrap();
        for m in &mutants {
            assert!(
                slice.contains(m.site.stmt),
                "mutation outside slice: {:?}",
                m.site
            );
        }
    }

    #[test]
    fn observable_mutants_have_failing_runs() {
        let budget = BugBudget {
            negation: 3,
            operation: 3,
            misuse: 3,
        };
        let mutants = Campaign::new(17).run(&golden(), "gnt1", &budget).unwrap();
        let observable = mutants.iter().filter(|m| m.observable).count();
        assert!(observable > 0, "campaign found no observable bugs");
        for m in mutants.iter().filter(|m| m.observable) {
            assert!(m.runs.iter().any(|r| r.label == sim::TraceLabel::Failing));
        }
    }

    /// The elision metrics must be live: a verdict-screened campaign
    /// reports how many trace bytes it never materialized and the lane
    /// occupancy of its verdict cosims (both rendered by `/metricsz`).
    #[test]
    fn campaign_records_elision_metrics() {
        obs::enable();
        let budget = BugBudget {
            negation: 2,
            operation: 1,
            misuse: 1,
        };
        Campaign::new(31).run(&golden(), "gnt1", &budget).unwrap();
        let report = obs::snapshot();
        let elided = report
            .counters
            .get("campaign.trace_bytes_elided")
            .copied()
            .unwrap_or(0);
        assert!(elided > 0, "verdict screening must elide trace bytes");
        let lanes = report
            .histograms
            .get("campaign.verdict_pass_lanes")
            .expect("verdict lane histogram recorded");
        assert!(lanes.count > 0);
    }

    /// The two-pass verdict flow must be bit-identical to the single-pass
    /// full-trace oracle: same mutants, same sources/sites, same
    /// observability flags, same labels, and byte-equal traces.
    #[test]
    fn two_pass_flow_matches_single_pass_oracle() {
        let budget = BugBudget {
            negation: 3,
            operation: 2,
            misuse: 3,
        };
        let campaign = Campaign::new(29);
        let two_pass = campaign.run(&golden(), "gnt1", &budget).unwrap();
        let single = campaign
            .run_single_pass(&golden(), "gnt1", &budget)
            .unwrap();
        assert!(!two_pass.is_empty());
        assert_eq!(two_pass.len(), single.len());
        for (a, b) in two_pass.iter().zip(&single) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.site, b.site);
            assert_eq!(a.observable, b.observable);
            assert_eq!(a.runs.len(), b.runs.len());
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.label, rb.label);
                assert_eq!(ra.trace, rb.trace);
                assert_eq!(ra.failure_cycles(), rb.failure_cycles());
            }
        }
    }
}
