//! # veribug-mutate
//!
//! Mutation-based bug injection for the VeriBug reproduction (paper Sec. V,
//! "Bug injection"): the three data-centric bug classes — **negation**,
//! **variable misuse**, and **operation substitution** — applied one bug per
//! mutated design, plus golden-vs-mutant co-simulation that decides whether
//! each bug is *observable* at a target output and labels every simulation
//! run as failing (`T_f`) or correct (`T_c`).
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug_mutate::{BugBudget, Campaign};
//!
//! let golden = verilog::parse(
//!     "module m(input a, input b, output y);\nassign y = a & ~b;\nendmodule",
//! )?.top().clone();
//! let budget = BugBudget { negation: 1, operation: 1, misuse: 1 };
//! let mutants = Campaign::new(42).run(&golden, "y", &budget)?;
//! assert!(!mutants.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod mutation;
pub mod observe;

pub use campaign::{BugBudget, Campaign, Mutant};
pub use mutation::{apply, enumerate_sites, MutationKind, MutationSite};
pub use observe::{
    any_diverged, cosimulate, cosimulate_against, cosimulate_with, golden_traces, golden_verdicts,
    is_observable, run_lane_groups, run_lane_groups_verdict, screen_against, screen_with,
    screening_mode, LabelledRun, RunVerdict,
};
