//! # veribug-cdfg
//!
//! GOLDMINE-style lightweight static analysis for the VeriBug reproduction:
//!
//! - [`Cdfg`] — statement-level control-data flow graph,
//! - [`Vdg`] — variable dependency graph abstracting operation detail,
//! - [`ConeOfInfluence`] — temporal dependence under `n`-cycle unrolling,
//! - [`dependencies_of`] — the paper's `Dep_t` reverse-DFS analysis,
//! - [`Slice`] — static and dynamic design slices for a target output,
//! - [`levelize`] — exposed-read/write summaries and a topological
//!   evaluation order for combinational processes (the scheduling layer of
//!   `veribug-sim`'s compiled engine).
//!
//! The paper uses the GOLDMINE framework [Pal et al., TCAD 2020] to produce
//! these artifacts; this crate computes the same artifacts directly from the
//! `verilog` AST (see DESIGN.md, substitution #1).
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug_cdfg::{dependencies_of, Slice, Vdg};
//!
//! let unit = verilog::parse(
//!     "module arb(input req1, input req2, output gnt1, output gnt2);\n\
//!      assign gnt1 = req1 & ~req2;\nassign gnt2 = req2;\nendmodule",
//! )?;
//! let module = unit.top();
//! let vdg = Vdg::build(module);
//! let dep = dependencies_of(&vdg, "gnt1");
//! assert!(dep.contains("req1") && dep.contains("req2"));
//!
//! let slice = Slice::of_target(module, "gnt1");
//! assert_eq!(slice.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod coi;
pub mod depend;
pub mod graph;
pub mod levelize;
pub mod slice;
pub mod vdg;

pub use coi::ConeOfInfluence;
pub use depend::dependencies_of;
pub use graph::{Cdfg, CdfgEdge, CdfgNode, DepKind};
pub use levelize::{levelize, CombProcess, Levelization};
pub use slice::Slice;
pub use vdg::{Vdg, VdgEdge};
