//! Design slicing (Sec. IV-B of the paper).
//!
//! The slicing criterion includes a statement when its left-hand-side
//! variable is in `Dep_t ∪ {t}` (static slice). The *dynamic* slice further
//! intersects the static slice with the statements actually executed by a
//! concrete input stimulus — "if a statement is not executed by `I_n`, it is
//! certainly not the cause of a bug symptomatized at one of the outputs".

use std::collections::BTreeSet;

use crate::depend::dependencies_of;
use crate::graph::Cdfg;
use crate::vdg::Vdg;
use verilog::{Module, StmtId};

/// A slice of a design with respect to a target output.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Slice {
    /// The target variable the slice was taken for.
    pub target: String,
    /// `Dep_t`: variables influencing the target.
    pub dep: BTreeSet<String>,
    /// Statement ids in the slice, ordered.
    pub stmts: BTreeSet<StmtId>,
}

impl Slice {
    /// Computes the **static** slice of `module` for `target`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let unit = verilog::parse(
    ///     "module m(input a, input b, output y, output z);\n\
    ///      wire t;\nassign t = a & b;\nassign y = ~t;\nassign z = b;\nendmodule",
    /// )?;
    /// let slice = veribug_cdfg::Slice::of_target(unit.top(), "y");
    /// assert_eq!(slice.stmts.len(), 2); // t and y, not z
    /// # Ok(())
    /// # }
    /// ```
    pub fn of_target(module: &Module, target: &str) -> Slice {
        let cdfg = Cdfg::build(module);
        let vdg = Vdg::from_cdfg(module, &cdfg);
        Self::of_target_with(&cdfg, &vdg, target)
    }

    /// Computes the static slice reusing prebuilt graphs.
    pub fn of_target_with(cdfg: &Cdfg, vdg: &Vdg, target: &str) -> Slice {
        let dep = dependencies_of(vdg, target);
        let stmts = cdfg
            .nodes()
            .iter()
            .filter(|n| n.lhs == target || dep.contains(&n.lhs))
            .map(|n| n.stmt)
            .collect();
        Slice {
            target: target.to_owned(),
            dep,
            stmts,
        }
    }

    /// Restricts this slice to the statements in `executed` (the statements
    /// a concrete stimulus actually drove), yielding the **dynamic** slice.
    pub fn restrict_to_executed(&self, executed: &BTreeSet<StmtId>) -> Slice {
        Slice {
            target: self.target.clone(),
            dep: self.dep.clone(),
            stmts: self.stmts.intersection(executed).copied().collect(),
        }
    }

    /// True when the slice contains the statement.
    pub fn contains(&self, stmt: StmtId) -> bool {
        self.stmts.contains(&stmt)
    }

    /// Number of statements in the slice.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when the slice has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        verilog::parse(src).unwrap().top().clone()
    }

    #[test]
    fn static_slice_follows_dependencies() {
        let m = module(
            "module m(input a, input b, output y, output z);\n\
             wire t;\nassign t = a & b;\nassign y = ~t;\nassign z = b;\nendmodule",
        );
        let s = Slice::of_target(&m, "y");
        assert_eq!(s.len(), 2);
        assert!(s.contains(StmtId(0))); // t = a & b
        assert!(s.contains(StmtId(1))); // y = ~t
        assert!(!s.contains(StmtId(2))); // z = b
        assert_eq!(
            s.dep.iter().cloned().collect::<Vec<_>>(),
            vec!["a", "b", "t"]
        );
    }

    #[test]
    fn control_dependencies_pull_in_guard_defs() {
        let m = module(
            "module m(input a, input b, output reg y);\nwire sel;\n\
             assign sel = a ^ b;\n\
             always @(*) begin\nif (sel) y = a; else y = b;\nend\nendmodule",
        );
        let s = Slice::of_target(&m, "y");
        // sel's definition is in the slice because y is control-dependent on it.
        assert!(s.contains(StmtId(0)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn dynamic_slice_drops_unexecuted_statements() {
        let m = module(
            "module m(input c, input a, input b, output reg y);\n\
             always @(*) begin\nif (c) y = a; else y = b;\nend\nendmodule",
        );
        let s = Slice::of_target(&m, "y");
        assert_eq!(s.len(), 2);
        // Pretend only the then-branch executed.
        let executed: BTreeSet<_> = [StmtId(0)].into_iter().collect();
        let d = s.restrict_to_executed(&executed);
        assert_eq!(d.len(), 1);
        assert!(d.contains(StmtId(0)));
        assert!(!d.contains(StmtId(1)));
    }

    #[test]
    fn empty_slice_for_unknown_target() {
        let m = module("module m(input a, output y);\nassign y = a;\nendmodule");
        let s = Slice::of_target(&m, "ghost");
        assert!(s.is_empty());
    }
}
