//! Dependence analysis: the `Dep_t` set of Sec. IV-B of the paper.
//!
//! Reverses the VDG edges and runs a depth-first search from the target
//! variable `t`; every variable reachable that way influences `t` through
//! some chain of control or data dependencies.

use std::collections::BTreeSet;

use crate::vdg::Vdg;

/// Computes `Dep_t`: all variables that (transitively) influence `target`,
/// excluding the target itself.
///
/// Returns an ordered set for deterministic downstream iteration. Returns an
/// empty set when the target is not a known signal.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let unit = verilog::parse(
///     "module arb(input req1, input req2, input state, output gnt1, output gnt2);\n\
///      assign gnt1 = (req1 & ~req2) | state;\n\
///      assign gnt2 = req2;\nendmodule",
/// )?;
/// let vdg = veribug_cdfg::Vdg::build(unit.top());
/// let dep = veribug_cdfg::dependencies_of(&vdg, "gnt1");
/// assert_eq!(
///     dep.into_iter().collect::<Vec<_>>(),
///     vec!["req1".to_owned(), "req2".to_owned(), "state".to_owned()],
/// );
/// # Ok(())
/// # }
/// ```
pub fn dependencies_of(vdg: &Vdg, target: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some(start) = vdg.index_of(target) else {
        return out;
    };
    let mut seen = vec![false; vdg.signals().len()];
    seen[start] = true;
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        for &ei in vdg.in_edges(n) {
            let prev = vdg.edges()[ei].from;
            if !seen[prev] {
                seen[prev] = true;
                out.insert(vdg.signals()[prev].clone());
                stack.push(prev);
            }
        }
    }
    out.remove(target);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(src: &str, target: &str) -> Vec<String> {
        let unit = verilog::parse(src).unwrap();
        let vdg = Vdg::build(unit.top());
        dependencies_of(&vdg, target).into_iter().collect()
    }

    #[test]
    fn matches_paper_arbiter_example() {
        // Fig. 2(1): Dep_gnt1 = {req1, req2, state}.
        let src = "\
module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);
  reg state;
  always @(posedge clk) state <= req1 ^ req2;
  always @(*) begin
    if (state) gnt1 = req1 & ~req2;
    else gnt1 = req1;
    gnt2 = req2 & ~req1;
  end
endmodule
";
        assert_eq!(dep(src, "gnt1"), vec!["req1", "req2", "state"]);
    }

    #[test]
    fn excludes_unrelated_signals() {
        let src = "module m(input a, input b, output y, output z);\nassign y = a;\nassign z = b;\nendmodule";
        assert_eq!(dep(src, "y"), vec!["a"]);
        assert_eq!(dep(src, "z"), vec!["b"]);
    }

    #[test]
    fn unknown_target_is_empty() {
        let src = "module m(input a, output y);\nassign y = a;\nendmodule";
        assert!(dep(src, "ghost").is_empty());
    }

    #[test]
    fn cyclic_state_terminates() {
        let src = "\
module m(input clk, input d, output reg q);
  always @(posedge clk) q <= q ^ d;
endmodule
";
        // q depends on itself through the register; DFS must terminate and
        // report d (and not loop forever). q itself is excluded.
        assert_eq!(dep(src, "q"), vec!["d"]);
    }
}
