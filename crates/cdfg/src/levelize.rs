//! Levelization of combinational processes.
//!
//! A cycle-based simulator can replace its fixpoint settle loop with a single
//! pass when the combinational processes admit a topological order under the
//! writes-before-reads relation. This module computes, for every
//! combinational process of a module (continuous assigns and `@(*)`/level
//! always blocks, in source order), its **exposed read set** and **write
//! set**, then orders the processes so every writer runs before its readers.
//!
//! A read is *exposed* when the signal's value can flow in from outside the
//! process: a reference is not exposed only if the signal was definitely
//! assigned — fully and on every control path — earlier in the same process.
//! Exposed reads are what create scheduling edges; block-local temporaries
//! (written then read inside one `always`) do not.
//!
//! The analysis is conservative: `if`/`case` branches contribute the
//! *intersection* of their definitely-written sets, only whole-signal
//! assignments (no bit/part select) count as definite writes, and every
//! `case` label is treated as read. When the conservative dependency graph
//! has a cycle (including a self-loop), [`levelize`] reports `order: None`
//! and the caller must fall back to fixpoint iteration.

use std::collections::BTreeSet;

use verilog::{Expr, Item, LValue, Module, Select, Stmt};

/// Read/write summary of one combinational process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombProcess {
    /// Index of the originating item in [`Module::items`].
    pub item: usize,
    /// Signals whose outside value the process may read (exposed reads).
    pub reads: BTreeSet<String>,
    /// Signals the process may write.
    pub writes: BTreeSet<String>,
}

/// The levelization result for a module's combinational processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// One summary per combinational process, in source order — the same
    /// order a simulator's elaboration classifies them.
    pub processes: Vec<CombProcess>,
    /// Indices into `processes` in evaluation order, or `None` when the
    /// dependency graph is cyclic (a static combinational loop).
    pub order: Option<Vec<usize>>,
}

impl Levelization {
    /// True when a single ordered pass suffices to settle the logic.
    pub fn is_acyclic(&self) -> bool {
        self.order.is_some()
    }
}

/// Computes read/write sets for every combinational process and a
/// deterministic topological evaluation order (smallest process index first
/// among ready processes), or `None` if the dependency graph is cyclic.
pub fn levelize(module: &Module) -> Levelization {
    let mut processes = Vec::new();
    for (item_idx, item) in module.items.iter().enumerate() {
        let mut p = CombProcess {
            item: item_idx,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
        };
        match item {
            Item::Assign(a) => {
                let mut defined = BTreeSet::new();
                assign_deps(&a.rhs, &a.lhs, a.lhs.select.is_none(), &mut defined, &mut p);
            }
            Item::Always(blk) if blk.sensitivity.is_combinational() => {
                let mut defined = BTreeSet::new();
                stmts_deps(&blk.body, &mut defined, &mut p);
            }
            Item::Always(_) => continue,
        }
        processes.push(p);
    }

    let order = topo_order(&processes);
    Levelization { processes, order }
}

/// Adds every signal `e` references that is not already definitely written.
fn expr_reads(e: &Expr, defined: &BTreeSet<String>, p: &mut CombProcess) {
    for name in e.referenced_signals() {
        if !defined.contains(name) {
            p.reads.insert(name.to_owned());
        }
    }
}

/// Records one assignment's reads and its write; `full` marks a
/// whole-signal assignment that definitely overwrites the target.
fn assign_deps(
    rhs: &Expr,
    lhs: &LValue,
    full: bool,
    defined: &mut BTreeSet<String>,
    p: &mut CombProcess,
) {
    expr_reads(rhs, defined, p);
    match &lhs.select {
        Some(Select::Bit(idx)) => expr_reads(idx, defined, p),
        Some(Select::Part { .. }) | None => {}
    }
    // A partial write reads the unreplaced bits of the previous value.
    if !full && !defined.contains(&lhs.base) {
        p.reads.insert(lhs.base.clone());
    }
    p.writes.insert(lhs.base.clone());
    if full {
        defined.insert(lhs.base.clone());
    }
}

/// Walks a statement list tracking the definitely-written set.
fn stmts_deps(stmts: &[Stmt], defined: &mut BTreeSet<String>, p: &mut CombProcess) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                assign_deps(&a.rhs, &a.lhs, a.lhs.select.is_none(), defined, p);
            }
            Stmt::If(i) => {
                expr_reads(&i.cond, defined, p);
                let mut then_def = defined.clone();
                stmts_deps(&i.then_branch, &mut then_def, p);
                let mut else_def = defined.clone();
                stmts_deps(&i.else_branch, &mut else_def, p);
                *defined = then_def.intersection(&else_def).cloned().collect();
            }
            Stmt::Case(c) => {
                expr_reads(&c.subject, defined, p);
                // Labels are evaluated until one matches; conservatively all read.
                for arm in &c.arms {
                    for label in &arm.labels {
                        expr_reads(label, defined, p);
                    }
                }
                let mut merged: Option<BTreeSet<String>> = None;
                for body in c
                    .arms
                    .iter()
                    .map(|arm| arm.body.as_slice())
                    .chain(std::iter::once(c.default.as_slice()))
                {
                    let mut branch_def = defined.clone();
                    stmts_deps(body, &mut branch_def, p);
                    merged = Some(match merged {
                        None => branch_def,
                        Some(m) => m.intersection(&branch_def).cloned().collect(),
                    });
                }
                if let Some(m) = merged {
                    *defined = m;
                }
            }
        }
    }
}

/// Kahn's algorithm with a smallest-index-first ready set, so the order is
/// deterministic and independent of hash state or thread count.
fn topo_order(processes: &[CombProcess]) -> Option<Vec<usize>> {
    let n = processes.len();
    // Self-loop: an exposed read of a signal the same process writes means
    // the process's input depends on its own output.
    for p in processes {
        if p.reads.intersection(&p.writes).next().is_some() {
            return None;
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (i, pi) in processes.iter().enumerate() {
        for (j, pj) in processes.iter().enumerate() {
            if i != j && pi.writes.intersection(&pj.reads).next().is_some() {
                succs[i].push(j);
                indeg[j] += 1;
            }
        }
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert(j);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lev(src: &str) -> Levelization {
        levelize(verilog::parse(src).unwrap().top())
    }

    #[test]
    fn chain_orders_writer_before_reader() {
        let l = lev("module m(input a, output y);\nwire t1, t2;\n\
                     assign t2 = ~t1;\nassign t1 = ~a;\nassign y = t2;\nendmodule");
        // Processes in source order: t2=~t1 (0), t1=~a (1), y=t2 (2).
        let order = l.order.expect("acyclic");
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(0), "t1 settles before t2");
        assert!(pos(0) < pos(2), "t2 settles before y");
    }

    #[test]
    fn static_loop_is_reported() {
        let l = lev("module m(input a, output y);\nwire t;\n\
                     assign t = ~y;\nassign y = t & a;\nendmodule");
        assert!(!l.is_acyclic());
    }

    #[test]
    fn self_dependency_is_a_loop() {
        let l = lev("module m(output reg y);\nalways @(*) y = ~y;\nendmodule");
        assert!(!l.is_acyclic());
    }

    #[test]
    fn block_local_temporary_is_not_exposed() {
        let l = lev("module m(input a, output reg y);\nreg t;\n\
                     always @(*) begin\nt = ~a;\ny = t;\nend\nendmodule");
        assert_eq!(l.processes.len(), 1);
        let p = &l.processes[0];
        assert!(p.reads.contains("a"));
        assert!(!p.reads.contains("t"), "t is written before it is read");
        assert!(p.writes.contains("t") && p.writes.contains("y"));
        assert!(l.is_acyclic());
    }

    #[test]
    fn read_before_write_in_branch_is_exposed() {
        // Only the then-branch defines t before the trailing read, so the
        // read of t stays exposed (and self-loops the process).
        let l = lev("module m(input a, input c, output reg y);\nreg t;\n\
                     always @(*) begin\nif (c) t = a;\ny = t;\nend\nendmodule");
        let p = &l.processes[0];
        assert!(p.reads.contains("t"));
        assert!(!l.is_acyclic(), "t in reads and writes is a self-loop");
    }

    #[test]
    fn case_without_default_does_not_define() {
        let l = lev(
            "module m(input [1:0] s, input a, output reg y, output reg z);\n\
                     always @(*) begin\ncase (s)\n2'b00: y = a;\n2'b01: y = ~a;\nendcase\n\
                     z = y;\nend\nendmodule",
        );
        let p = &l.processes[0];
        // The implicit empty default leaves y undefined on that path, so the
        // later read of y is exposed.
        assert!(p.reads.contains("y"));
        assert!(!l.is_acyclic());
    }

    #[test]
    fn partial_write_reads_previous_value() {
        let l = lev("module m(input a, output reg [3:0] y);\n\
                     always @(*) y[0] = a;\nendmodule");
        let p = &l.processes[0];
        assert!(p.reads.contains("y"), "partial write keeps unwritten bits");
        assert!(!l.is_acyclic());
    }

    #[test]
    fn sequential_blocks_are_ignored() {
        let l = lev("module m(input clk, input d, output reg q, output w);\n\
                     assign w = q;\nalways @(posedge clk) q <= d;\nendmodule");
        assert_eq!(l.processes.len(), 1);
        assert_eq!(l.processes[0].item, 0);
        assert!(l.is_acyclic());
    }

    #[test]
    fn order_is_deterministic() {
        let src = "module m(input a, output v, output w, output x, output y);\n\
                   assign v = a;\nassign w = a;\nassign x = a;\nassign y = a;\nendmodule";
        let a = lev(src).order.unwrap();
        let b = lev(src).order.unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![0, 1, 2, 3],
            "independent processes keep source order"
        );
    }
}
