//! Variable dependency graph (VDG).
//!
//! The VDG abstracts operation details away from the CDFG: one node per
//! design variable, one edge `u → v` when `u` contributes (through data or
//! control) to some assignment of `v`. Edges remember whether they cross a
//! register boundary (non-blocking assignment), which the cone-of-influence
//! analysis uses to count cycles.

use std::collections::{BTreeSet, HashMap};

use crate::graph::{Cdfg, DepKind};
use verilog::{AssignKind, Module};

/// One directed VDG edge: `from` influences `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct VdgEdge {
    /// Index of the influencing variable.
    pub from: usize,
    /// Index of the influenced (defined) variable.
    pub to: usize,
    /// Data or control dependency.
    pub kind: DepKind,
    /// True when the defining assignment is non-blocking (register).
    pub sequential: bool,
}

/// The variable dependency graph of one module.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Vdg {
    signals: Vec<String>,
    index: HashMap<String, usize>,
    edges: Vec<VdgEdge>,
    /// Outgoing adjacency (by `from`).
    fwd: Vec<Vec<usize>>,
    /// Incoming adjacency (by `to`).
    rev: Vec<Vec<usize>>,
}

impl Vdg {
    /// Builds the VDG of a module (via its CDFG).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let unit = verilog::parse(
    ///     "module m(input a, input b, output y);\n\
    ///      wire t;\nassign t = a & b;\nassign y = ~t;\nendmodule",
    /// )?;
    /// let vdg = veribug_cdfg::Vdg::build(unit.top());
    /// assert!(vdg.influences("a", "y"));
    /// assert!(!vdg.influences("y", "a"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(module: &Module) -> Self {
        let cdfg = Cdfg::build(module);
        Self::from_cdfg(module, &cdfg)
    }

    /// Builds the VDG from an already-computed CDFG.
    pub fn from_cdfg(module: &Module, cdfg: &Cdfg) -> Self {
        let mut signals: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let intern = |name: &str, signals: &mut Vec<String>, index: &mut HashMap<String, usize>| {
            if let Some(&i) = index.get(name) {
                i
            } else {
                let i = signals.len();
                signals.push(name.to_owned());
                index.insert(name.to_owned(), i);
                i
            }
        };
        // Intern every declared signal so isolated inputs still appear.
        for p in &module.ports {
            intern(&p.name, &mut signals, &mut index);
        }
        for d in &module.decls {
            intern(&d.name, &mut signals, &mut index);
        }

        let mut edge_set: BTreeSet<(usize, usize, DepKind, bool)> = BTreeSet::new();
        for node in cdfg.nodes() {
            let to = intern(&node.lhs, &mut signals, &mut index);
            let sequential = node.kind == AssignKind::NonBlocking;
            for v in &node.rhs_vars {
                let from = intern(v, &mut signals, &mut index);
                edge_set.insert((from, to, DepKind::Data, sequential));
            }
            for v in &node.guard_vars {
                let from = intern(v, &mut signals, &mut index);
                edge_set.insert((from, to, DepKind::Control, sequential));
            }
        }
        let edges: Vec<VdgEdge> = edge_set
            .into_iter()
            .map(|(from, to, kind, sequential)| VdgEdge {
                from,
                to,
                kind,
                sequential,
            })
            .collect();
        let mut fwd = vec![Vec::new(); signals.len()];
        let mut rev = vec![Vec::new(); signals.len()];
        for (i, e) in edges.iter().enumerate() {
            fwd[e.from].push(i);
            rev[e.to].push(i);
        }
        Vdg {
            signals,
            index,
            edges,
            fwd,
            rev,
        }
    }

    /// All signal names, by node index.
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// All edges.
    pub fn edges(&self) -> &[VdgEdge] {
        &self.edges
    }

    /// The node index of a signal, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Indices of edges leaving `signal` (influences of `signal` on others).
    pub fn out_edges(&self, node: usize) -> &[usize] {
        &self.fwd[node]
    }

    /// Indices of edges entering `node` (what influences it).
    pub fn in_edges(&self, node: usize) -> &[usize] {
        &self.rev[node]
    }

    /// True when `from` transitively influences `to` (any path, any length).
    pub fn influences(&self, from: &str, to: &str) -> bool {
        let (Some(src), Some(dst)) = (self.index_of(from), self.index_of(to)) else {
            return false;
        };
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.signals.len()];
        let mut stack = vec![src];
        seen[src] = true;
        while let Some(n) = stack.pop() {
            for &ei in &self.fwd[n] {
                let next = self.edges[ei].to;
                if next == dst {
                    return true;
                }
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdg(src: &str) -> Vdg {
        Vdg::build(verilog::parse(src).unwrap().top())
    }

    #[test]
    fn chains_are_transitive() {
        let g = vdg("module m(input a, output y);\nwire t1, t2;\n\
             assign t1 = ~a;\nassign t2 = ~t1;\nassign y = ~t2;\nendmodule");
        assert!(g.influences("a", "y"));
        assert!(g.influences("t1", "y"));
        assert!(!g.influences("y", "t1"));
    }

    #[test]
    fn control_dependencies_are_edges() {
        let g = vdg("module m(input c, input a, output reg y);\n\
             always @(*) begin\nif (c) y = a; else y = 1'b0;\nend\nendmodule");
        let yc = g.edges().iter().any(|e| {
            g.signals()[e.from] == "c" && g.signals()[e.to] == "y" && e.kind == DepKind::Control
        });
        assert!(yc, "expected control edge c -> y");
    }

    #[test]
    fn sequential_flag_on_nonblocking_defs() {
        let g = vdg("module m(input clk, input d, output reg q);\n\
             always @(posedge clk) q <= d;\nendmodule");
        let e = g
            .edges()
            .iter()
            .find(|e| g.signals()[e.from] == "d" && g.signals()[e.to] == "q")
            .unwrap();
        assert!(e.sequential);
    }

    #[test]
    fn isolated_inputs_have_nodes() {
        let g = vdg("module m(input a, input unused, output y);\nassign y = a;\nendmodule");
        assert!(g.index_of("unused").is_some());
        assert!(g.out_edges(g.index_of("unused").unwrap()).is_empty());
    }

    #[test]
    fn self_influence_is_true() {
        let g = vdg("module m(input a, output y);\nassign y = a;\nendmodule");
        assert!(g.influences("a", "a"));
    }
}
