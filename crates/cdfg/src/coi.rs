//! Cone-of-influence (COI): temporal dependence under `n`-cycle unrolling.
//!
//! Walking backward from the target, combinational edges are free while
//! register-crossing (sequential) edges consume one cycle of the budget. The
//! COI at depth `n` is every signal that can affect the target within `n`
//! clock cycles — GOLDMINE's third artifact.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::vdg::Vdg;

/// The cone of influence of a target output.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConeOfInfluence {
    /// For each reachable signal, the minimum number of clock cycles needed
    /// for a change on it to reach the target (0 = combinational path).
    pub min_cycles: BTreeMap<String, u32>,
    /// The unroll depth used to compute the cone.
    pub depth: u32,
}

impl ConeOfInfluence {
    /// Computes the COI of `target` for an `n`-cycle unrolling.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let unit = verilog::parse(
    ///     "module m(input clk, input d, output y);\n\
    ///      reg q;\n\
    ///      always @(posedge clk) q <= d;\n\
    ///      assign y = q;\nendmodule",
    /// )?;
    /// let vdg = veribug_cdfg::Vdg::build(unit.top());
    /// let coi = veribug_cdfg::ConeOfInfluence::compute(&vdg, "y", 2);
    /// assert_eq!(coi.min_cycles.get("q"), Some(&0)); // combinational into y
    /// assert_eq!(coi.min_cycles.get("d"), Some(&1)); // one register away
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(vdg: &Vdg, target: &str, depth: u32) -> Self {
        let mut min_cycles = BTreeMap::new();
        let Some(start) = vdg.index_of(target) else {
            return ConeOfInfluence { min_cycles, depth };
        };
        // 0-1 BFS backward: sequential edges cost 1 cycle, others 0.
        let n = vdg.signals().len();
        let mut best = vec![u32::MAX; n];
        best[start] = 0;
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            let here = best[node];
            for &ei in vdg.in_edges(node) {
                let e = vdg.edges()[ei];
                let cost = u32::from(e.sequential);
                let cand = here.saturating_add(cost);
                if cand <= depth && cand < best[e.from] {
                    best[e.from] = cand;
                    if cost == 0 {
                        queue.push_front(e.from);
                    } else {
                        queue.push_back(e.from);
                    }
                }
            }
        }
        for (i, b) in best.iter().enumerate() {
            if *b != u32::MAX && i != start {
                min_cycles.insert(vdg.signals()[i].clone(), *b);
            }
        }
        ConeOfInfluence { min_cycles, depth }
    }

    /// Signals in the cone, ordered by name.
    pub fn signals(&self) -> BTreeSet<&str> {
        self.min_cycles.keys().map(String::as_str).collect()
    }

    /// True when the named signal can affect the target within the depth.
    pub fn contains(&self, signal: &str) -> bool {
        self.min_cycles.contains_key(signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdg::Vdg;

    fn coi(src: &str, target: &str, depth: u32) -> ConeOfInfluence {
        let unit = verilog::parse(src).unwrap();
        ConeOfInfluence::compute(&Vdg::build(unit.top()), target, depth)
    }

    const PIPE: &str = "\
module pipe(input clk, input d, output y);
  reg s1, s2;
  always @(posedge clk) begin
    s1 <= d;
    s2 <= s1;
  end
  assign y = s2;
endmodule
";

    #[test]
    fn register_chain_counts_cycles() {
        let c = coi(PIPE, "y", 4);
        assert_eq!(c.min_cycles.get("s2"), Some(&0));
        assert_eq!(c.min_cycles.get("s1"), Some(&1));
        assert_eq!(c.min_cycles.get("d"), Some(&2));
    }

    #[test]
    fn depth_zero_cuts_register_boundary() {
        let c = coi(PIPE, "y", 0);
        assert!(c.contains("s2"));
        assert!(!c.contains("s1"));
        assert!(!c.contains("d"));
    }

    #[test]
    fn depth_one_reaches_one_register_back() {
        let c = coi(PIPE, "y", 1);
        assert!(c.contains("s1"));
        assert!(!c.contains("d"));
    }

    #[test]
    fn self_loop_register() {
        let c = coi(
            "module m(input clk, input en, output q);\nreg r;\nalways @(posedge clk) r <= r ^ en;\nassign q = r;\nendmodule",
            "q",
            3,
        );
        assert_eq!(c.min_cycles.get("r"), Some(&0));
        assert_eq!(c.min_cycles.get("en"), Some(&1));
    }

    #[test]
    fn unknown_target_empty() {
        let c = coi(PIPE, "ghost", 3);
        assert!(c.min_cycles.is_empty());
    }
}
