//! Statement-level control-data flow graph (CDFG).
//!
//! One node per assignment statement; a **data** edge `A → B` when `A`'s
//! defined signal is read by `B`'s right-hand side, and a **control** edge
//! `A → B` when `A`'s defined signal appears in a branch condition guarding
//! `B`. Guard conditions are accumulated while walking `if`/`case` bodies, so
//! every node also knows the full set of signals its execution depends on.

use std::collections::HashMap;

use verilog::{AssignKind, CaseStmt, Expr, IfStmt, Item, Module, Span, Stmt, StmtId};

/// Whether a dependency flows through data or control.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum DepKind {
    /// The source signal is read by the defining expression.
    Data,
    /// The source signal appears in a guarding branch condition.
    Control,
}

/// A CDFG node: one assignment statement plus its guard context.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CdfgNode {
    /// The statement's stable id.
    pub stmt: StmtId,
    /// Signal defined by the statement.
    pub lhs: String,
    /// Signals read by the right-hand side (dedup'd, source order).
    pub rhs_vars: Vec<String>,
    /// Signals read by every enclosing branch condition (dedup'd).
    pub guard_vars: Vec<String>,
    /// Continuous / blocking / non-blocking.
    pub kind: AssignKind,
    /// Source location of the statement.
    pub span: Span,
}

/// A directed CDFG edge between statement nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CdfgEdge {
    /// Index of the defining node.
    pub from: usize,
    /// Index of the consuming node.
    pub to: usize,
    /// Data or control dependency.
    pub kind: DepKind,
}

/// The control-data flow graph of one module.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cdfg {
    nodes: Vec<CdfgNode>,
    edges: Vec<CdfgEdge>,
    by_stmt: HashMap<StmtId, usize>,
}

impl Cdfg {
    /// Builds the CDFG of a module.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let unit = verilog::parse(
    ///     "module m(input a, input b, output y);\n\
    ///      wire t;\nassign t = a & b;\nassign y = ~t;\nendmodule",
    /// )?;
    /// let cdfg = veribug_cdfg::Cdfg::build(unit.top());
    /// assert_eq!(cdfg.nodes().len(), 2);
    /// assert_eq!(cdfg.edges().len(), 1); // t flows into y
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(module: &Module) -> Self {
        let mut nodes = Vec::new();
        for item in &module.items {
            match item {
                Item::Assign(a) => {
                    nodes.push(CdfgNode {
                        stmt: a.id,
                        lhs: a.lhs.base.clone(),
                        rhs_vars: dedup(rhs_reads(a)),
                        guard_vars: Vec::new(),
                        kind: a.kind,
                        span: a.span,
                    });
                }
                Item::Always(blk) => {
                    let mut guards: Vec<String> = Vec::new();
                    collect_nodes(&blk.body, &mut guards, &mut nodes);
                }
            }
        }
        let mut by_stmt = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_stmt.insert(n.stmt, i);
        }
        // Def→use edges between statements.
        let mut edges = Vec::new();
        for (from, def) in nodes.iter().enumerate() {
            for (to, usenode) in nodes.iter().enumerate() {
                if usenode.rhs_vars.contains(&def.lhs) {
                    edges.push(CdfgEdge {
                        from,
                        to,
                        kind: DepKind::Data,
                    });
                }
                if usenode.guard_vars.contains(&def.lhs) {
                    edges.push(CdfgEdge {
                        from,
                        to,
                        kind: DepKind::Control,
                    });
                }
            }
        }
        Cdfg {
            nodes,
            edges,
            by_stmt,
        }
    }

    /// All statement nodes, indexed by position.
    pub fn nodes(&self) -> &[CdfgNode] {
        &self.nodes
    }

    /// All dependency edges.
    pub fn edges(&self) -> &[CdfgEdge] {
        &self.edges
    }

    /// The node for a given statement id, if present.
    pub fn node_of(&self, stmt: StmtId) -> Option<&CdfgNode> {
        self.by_stmt.get(&stmt).map(|&i| &self.nodes[i])
    }

    /// Statements that define a given signal (a signal may be assigned in
    /// several branches).
    pub fn defs_of<'g>(&'g self, signal: &str) -> impl Iterator<Item = &'g CdfgNode> {
        let signal = signal.to_owned();
        self.nodes.iter().filter(move |n| n.lhs == signal)
    }
}

fn rhs_reads(a: &verilog::Assignment) -> Vec<String> {
    let mut vars: Vec<String> = a
        .rhs
        .referenced_signals()
        .into_iter()
        .map(str::to_owned)
        .collect();
    // A bit-select on the LHS reads its index expression too.
    if let Some(verilog::Select::Bit(idx)) = &a.lhs.select {
        vars.extend(idx.referenced_signals().into_iter().map(str::to_owned));
    }
    vars
}

fn expr_vars(e: &Expr) -> Vec<String> {
    e.referenced_signals()
        .into_iter()
        .map(str::to_owned)
        .collect()
}

fn collect_nodes(stmts: &[Stmt], guards: &mut Vec<String>, nodes: &mut Vec<CdfgNode>) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => nodes.push(CdfgNode {
                stmt: a.id,
                lhs: a.lhs.base.clone(),
                rhs_vars: dedup(rhs_reads(a)),
                guard_vars: dedup(guards.clone()),
                kind: a.kind,
                span: a.span,
            }),
            Stmt::If(IfStmt {
                cond,
                then_branch,
                else_branch,
                ..
            }) => {
                let depth = guards.len();
                guards.extend(expr_vars(cond));
                collect_nodes(then_branch, guards, nodes);
                collect_nodes(else_branch, guards, nodes);
                guards.truncate(depth);
            }
            Stmt::Case(CaseStmt {
                subject,
                arms,
                default,
                ..
            }) => {
                let depth = guards.len();
                guards.extend(expr_vars(subject));
                for arm in arms {
                    for label in &arm.labels {
                        guards.extend(expr_vars(label));
                    }
                    collect_nodes(&arm.body, guards, nodes);
                    // Label vars only guard their own arm.
                    guards.truncate(depth + expr_vars(subject).len());
                }
                collect_nodes(default, guards, nodes);
                guards.truncate(depth);
            }
        }
    }
}

fn dedup(vars: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    vars.into_iter()
        .filter(|v| seen.insert(v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        verilog::parse(src).unwrap().top().clone()
    }

    #[test]
    fn data_edges_follow_def_use() {
        let m = module(
            "module m(input a, input b, output y);\nwire t;\nassign t = a & b;\nassign y = ~t;\nendmodule",
        );
        let g = Cdfg::build(&m);
        assert_eq!(g.nodes().len(), 2);
        let e = g.edges();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].kind, DepKind::Data);
        assert_eq!(g.nodes()[e[0].from].lhs, "t");
        assert_eq!(g.nodes()[e[0].to].lhs, "y");
    }

    #[test]
    fn guard_vars_accumulate_through_nesting() {
        let m = module(
            "module m(input c1, input c2, input a, output reg y);\n\
             always @(*) begin\n\
               if (c1) begin\n\
                 if (c2) y = a; else y = ~a;\n\
               end else y = 1'b0;\n\
             end\nendmodule",
        );
        let g = Cdfg::build(&m);
        assert_eq!(g.nodes().len(), 3);
        // First node: guarded by c1 and c2.
        assert_eq!(g.nodes()[0].guard_vars, vec!["c1", "c2"]);
        // Second (else of inner if): same guard set.
        assert_eq!(g.nodes()[1].guard_vars, vec!["c1", "c2"]);
        // Third (outer else): only c1.
        assert_eq!(g.nodes()[2].guard_vars, vec!["c1"]);
    }

    #[test]
    fn control_edges_from_guard_defs() {
        let m = module(
            "module m(input a, input b, output reg y);\nwire sel;\n\
             assign sel = a ^ b;\n\
             always @(*) begin\nif (sel) y = a; else y = b;\nend\nendmodule",
        );
        let g = Cdfg::build(&m);
        let ctrl: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Control)
            .collect();
        assert_eq!(ctrl.len(), 2); // sel guards both branch assignments
        for e in ctrl {
            assert_eq!(g.nodes()[e.from].lhs, "sel");
        }
    }

    #[test]
    fn case_labels_guard_only_their_arm() {
        let m = module(
            "module m(input [1:0] s, input a, input b, output reg y);\n\
             always @(*) begin\ncase (s)\n2'b00: y = a;\n2'b01: y = b;\ndefault: y = 1'b0;\nendcase\nend\nendmodule",
        );
        let g = Cdfg::build(&m);
        for n in g.nodes() {
            assert_eq!(n.guard_vars, vec!["s"]);
        }
    }

    #[test]
    fn defs_of_finds_multiple_branch_defs() {
        let m = module(
            "module m(input c, input a, input b, output reg y);\n\
             always @(*) begin\nif (c) y = a; else y = b;\nend\nendmodule",
        );
        let g = Cdfg::build(&m);
        assert_eq!(g.defs_of("y").count(), 2);
    }

    #[test]
    fn lhs_bit_select_index_counts_as_read() {
        let m = module(
            "module m(input [1:0] i, input a, output reg [3:0] y);\n\
             always @(*) begin\ny[i] = a;\nend\nendmodule",
        );
        let g = Cdfg::build(&m);
        assert!(g.nodes()[0].rhs_vars.contains(&"a".to_owned()));
        assert!(g.nodes()[0].rhs_vars.contains(&"i".to_owned()));
    }
}
