//! # veribug-baseline
//!
//! Classical **spectrum-based fault localization** (SBFL) baselines over the
//! same statement-execution records VeriBug consumes. The paper situates
//! VeriBug against simulation-pattern approaches [Pal & Vasudevan, VLSID
//! 2016] that rank suspicious code from pass/fail execution spectra; this
//! crate implements the three standard SBFL formulas — Tarantula, Ochiai,
//! and Jaccard — used as the comparison series in the Table III harness.
//!
//! For each statement, four spectrum counts are collected:
//!
//! - `ef` — failing traces that executed the statement,
//! - `nf` — failing traces that did not,
//! - `ep` — passing traces that executed it,
//! - `np` — passing traces that did not.
//!
//! ## Quick start
//!
//! ```
//! use veribug_baseline::{SpectrumFormula, StmtSpectrum};
//!
//! let spectrum = StmtSpectrum { ef: 4, nf: 0, ep: 1, np: 5 };
//! let score = SpectrumFormula::Ochiai.score(&spectrum);
//! assert!(score > 0.8);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;

use sim::{Trace, TraceLabel};
use verilog::StmtId;

/// Execution-spectrum counts for one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StmtSpectrum {
    /// Failing traces that executed the statement.
    pub ef: u32,
    /// Failing traces that did not execute it.
    pub nf: u32,
    /// Passing traces that executed it.
    pub ep: u32,
    /// Passing traces that did not execute it.
    pub np: u32,
}

/// The SBFL ranking formulas implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SpectrumFormula {
    /// Jones & Harrold 2005.
    Tarantula,
    /// Abreu et al. 2006.
    Ochiai,
    /// Set-similarity formula.
    Jaccard,
}

impl SpectrumFormula {
    /// All formulas.
    pub const ALL: [SpectrumFormula; 3] = [
        SpectrumFormula::Tarantula,
        SpectrumFormula::Ochiai,
        SpectrumFormula::Jaccard,
    ];

    /// Scores one statement's spectrum; higher is more suspicious.
    pub fn score(self, s: &StmtSpectrum) -> f64 {
        let ef = f64::from(s.ef);
        let nf = f64::from(s.nf);
        let ep = f64::from(s.ep);
        let np = f64::from(s.np);
        match self {
            SpectrumFormula::Tarantula => {
                let fail_ratio = if ef + nf > 0.0 { ef / (ef + nf) } else { 0.0 };
                let pass_ratio = if ep + np > 0.0 { ep / (ep + np) } else { 0.0 };
                if fail_ratio + pass_ratio == 0.0 {
                    0.0
                } else {
                    fail_ratio / (fail_ratio + pass_ratio)
                }
            }
            SpectrumFormula::Ochiai => {
                let denom = ((ef + nf) * (ef + ep)).sqrt();
                if denom == 0.0 {
                    0.0
                } else {
                    ef / denom
                }
            }
            SpectrumFormula::Jaccard => {
                let denom = ef + nf + ep;
                if denom == 0.0 {
                    0.0
                } else {
                    ef / denom
                }
            }
        }
    }
}

impl std::fmt::Display for SpectrumFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpectrumFormula::Tarantula => "tarantula",
            SpectrumFormula::Ochiai => "ochiai",
            SpectrumFormula::Jaccard => "jaccard",
        })
    }
}

/// Collects per-statement spectra from labelled traces, restricted to the
/// statements in `slice` (the same dynamic-slice restriction VeriBug uses).
pub fn collect_spectra(
    runs: &[(TraceLabel, &Trace)],
    slice: &std::collections::BTreeSet<StmtId>,
) -> BTreeMap<StmtId, StmtSpectrum> {
    let mut out: BTreeMap<StmtId, StmtSpectrum> = BTreeMap::new();
    for id in slice {
        out.insert(*id, StmtSpectrum::default());
    }
    for (label, trace) in runs {
        let executed = trace.executed_stmts();
        for (id, spec) in out.iter_mut() {
            let hit = executed.contains(id);
            match (label, hit) {
                (TraceLabel::Failing, true) => spec.ef += 1,
                (TraceLabel::Failing, false) => spec.nf += 1,
                (TraceLabel::Correct, true) => spec.ep += 1,
                (TraceLabel::Correct, false) => spec.np += 1,
            }
        }
    }
    out
}

/// Ranks statements by decreasing suspiciousness under a formula. Ties
/// break toward lower statement ids (deterministic).
pub fn rank(
    spectra: &BTreeMap<StmtId, StmtSpectrum>,
    formula: SpectrumFormula,
) -> Vec<(StmtId, f64)> {
    let mut v: Vec<(StmtId, f64)> = spectra
        .iter()
        .map(|(id, s)| (*id, formula.score(s)))
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Top-1 localization with an SBFL formula: the highest-ranked statement
/// (first under the deterministic tie-break).
pub fn top1(spectra: &BTreeMap<StmtId, StmtSpectrum>, formula: SpectrumFormula) -> Option<StmtId> {
    rank(spectra, formula).first().map(|(id, _)| *id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn tarantula_extremes() {
        // Executed by every failing trace, no passing trace: maximal.
        let hot = StmtSpectrum {
            ef: 5,
            nf: 0,
            ep: 0,
            np: 5,
        };
        assert_eq!(SpectrumFormula::Tarantula.score(&hot), 1.0);
        // Executed only by passing traces: minimal.
        let cold = StmtSpectrum {
            ef: 0,
            nf: 5,
            ep: 5,
            np: 0,
        };
        assert_eq!(SpectrumFormula::Tarantula.score(&cold), 0.0);
    }

    #[test]
    fn ochiai_monotone_in_ef() {
        let lo = StmtSpectrum {
            ef: 1,
            nf: 4,
            ep: 2,
            np: 3,
        };
        let hi = StmtSpectrum {
            ef: 4,
            nf: 1,
            ep: 2,
            np: 3,
        };
        assert!(SpectrumFormula::Ochiai.score(&hi) > SpectrumFormula::Ochiai.score(&lo));
    }

    #[test]
    fn zero_denominators_are_zero_scores() {
        let empty = StmtSpectrum::default();
        for f in SpectrumFormula::ALL {
            assert_eq!(f.score(&empty), 0.0, "{f}");
        }
    }

    #[test]
    fn spectra_collection_counts_correctly() {
        use sim::{CycleRecord, StmtExec, Value};
        let mk_trace = |stmts: &[u32]| Trace {
            cycles: vec![CycleRecord {
                cycle: 0,
                signals: vec![Value::bit(false)].into(),
                execs: stmts
                    .iter()
                    .map(|s| StmtExec {
                        stmt: StmtId(*s),
                        operands: sim::Operands::empty(),
                        result: Value::bit(true),
                    })
                    .collect::<Vec<_>>()
                    .into(),
            }],
        };
        let fail = mk_trace(&[0, 1]);
        let pass = mk_trace(&[0]);
        let slice: BTreeSet<StmtId> = [StmtId(0), StmtId(1)].into_iter().collect();
        let runs = vec![(TraceLabel::Failing, &fail), (TraceLabel::Correct, &pass)];
        let spectra = collect_spectra(&runs, &slice);
        assert_eq!(
            spectra[&StmtId(0)],
            StmtSpectrum {
                ef: 1,
                nf: 0,
                ep: 1,
                np: 0
            }
        );
        assert_eq!(
            spectra[&StmtId(1)],
            StmtSpectrum {
                ef: 1,
                nf: 0,
                ep: 0,
                np: 1
            }
        );
        // Statement 1 only executes in the failing trace: most suspicious.
        assert_eq!(top1(&spectra, SpectrumFormula::Ochiai), Some(StmtId(1)));
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let mut spectra = BTreeMap::new();
        let s = StmtSpectrum {
            ef: 2,
            nf: 0,
            ep: 0,
            np: 2,
        };
        spectra.insert(StmtId(5), s);
        spectra.insert(StmtId(2), s);
        let ranked = rank(&spectra, SpectrumFormula::Tarantula);
        assert_eq!(ranked[0].0, StmtId(2));
    }
}
