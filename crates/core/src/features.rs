//! Feature extraction (paper Sec. IV-B): operand contexts as leaf-to-leaf
//! AST paths.
//!
//! An assignment's AST is rooted at the assignment-kind node with two
//! wrappers — `Lvalue` over the target and `Rvalue` over the expression —
//! matching Fig. 2(3) of the paper. The *context* of an input operand is the
//! list of interior-node-kind sequences from each of its leaf occurrences to
//! every other leaf. For `gnt1 = req1 & ~req2`, the context of `req1` is
//! `{[And, Rvalue, BlockingAssignment, Lvalue], [And, Not]}`.

use std::collections::BTreeMap;

use verilog::{Assignment, Expr, Module, NodeKind, Select, StmtId};

/// A single leaf-to-leaf path: the interior node kinds between two leaves.
pub type Path = Vec<NodeKind>;

/// The context of one input operand in one statement.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OperandContext {
    /// The operand's signal name.
    pub name: String,
    /// All leaf-to-leaf paths from this operand's occurrences to every
    /// other leaf of the statement AST.
    pub paths: Vec<Path>,
}

/// Extracted features for one assignment statement.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StatementFeatures {
    /// The statement's stable id.
    pub stmt: StmtId,
    /// The defined (LHS) signal.
    pub lhs: String,
    /// One context per distinct input operand, in first-occurrence order.
    pub operands: Vec<OperandContext>,
}

impl StatementFeatures {
    /// Extracts features from one assignment.
    ///
    /// Returns `None` when the statement has no input operands (e.g.
    /// `y = 1'b0`), which VeriBug cannot attribute to anything.
    pub fn extract(a: &Assignment) -> Option<Self> {
        let tree = build_tree(a);
        let leaves = collect_leaves(&tree);
        // Distinct input-operand names, first-occurrence order, excluding
        // the LHS leaf (index 0 by construction).
        let mut operand_names: Vec<&str> = Vec::new();
        for leaf in leaves.iter().skip(1) {
            if let Some(name) = &leaf.name {
                if !operand_names.contains(&name.as_str()) {
                    operand_names.push(name);
                }
            }
        }
        if operand_names.is_empty() {
            return None;
        }
        let operands = operand_names
            .iter()
            .map(|name| {
                let mut paths = Vec::new();
                for (i, li) in leaves.iter().enumerate().skip(1) {
                    if li.name.as_deref() != Some(*name) {
                        continue;
                    }
                    for (j, lj) in leaves.iter().enumerate() {
                        if i == j || lj.name.as_deref() == Some(*name) {
                            continue;
                        }
                        paths.push(path_between(&li.ancestry, &lj.ancestry));
                    }
                }
                OperandContext {
                    name: (*name).to_owned(),
                    paths,
                }
            })
            .collect();
        Some(StatementFeatures {
            stmt: a.id,
            lhs: a.lhs.base.clone(),
            operands,
        })
    }

    /// Extracts features for every assignment of a module, keyed by
    /// statement id (statements without operands are skipped).
    pub fn extract_all(module: &Module) -> BTreeMap<StmtId, StatementFeatures> {
        module
            .assignments()
            .into_iter()
            .filter_map(|a| Self::extract(a).map(|f| (a.id, f)))
            .collect()
    }

    /// Number of operands.
    pub fn operand_count(&self) -> usize {
        self.operands.len()
    }

    /// Index of a named operand.
    pub fn operand_index(&self, name: &str) -> Option<usize> {
        self.operands.iter().position(|o| o.name == name)
    }
}

// ---- internal path-tree machinery ----

/// One leaf with the interior-node ancestry from the root down to (not
/// including) the leaf.
#[derive(Debug, Clone)]
struct LeafInfo {
    /// Signal name (None for literal leaves).
    name: Option<String>,
    /// Interior node kinds, root first.
    ancestry: Vec<NodeKind>,
}

#[derive(Debug, Clone)]
enum PathTree {
    Interior(NodeKind, Vec<PathTree>),
    Leaf(Option<String>),
}

fn build_tree(a: &Assignment) -> PathTree {
    let mut lvalue_children = vec![PathTree::Leaf(Some(a.lhs.base.clone()))];
    // A dynamic bit-select index on the LHS contributes operand leaves too.
    if let Some(Select::Bit(idx)) = &a.lhs.select {
        lvalue_children.push(expr_tree(idx));
    }
    PathTree::Interior(
        a.kind.node_kind(),
        vec![
            PathTree::Interior(NodeKind::Lvalue, lvalue_children),
            PathTree::Interior(NodeKind::Rvalue, vec![expr_tree(&a.rhs)]),
        ],
    )
}

fn expr_tree(e: &Expr) -> PathTree {
    match e {
        Expr::Ident { name, .. } => PathTree::Leaf(Some(name.clone())),
        Expr::Literal { .. } => PathTree::Leaf(None),
        Expr::Unary { op, operand, .. } => {
            PathTree::Interior(op.node_kind(), vec![expr_tree(operand)])
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            PathTree::Interior(op.node_kind(), vec![expr_tree(lhs), expr_tree(rhs)])
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => PathTree::Interior(
            NodeKind::Ternary,
            vec![
                PathTree::Interior(NodeKind::TernaryCond, vec![expr_tree(cond)]),
                PathTree::Interior(NodeKind::TernaryThen, vec![expr_tree(then_expr)]),
                PathTree::Interior(NodeKind::TernaryElse, vec![expr_tree(else_expr)]),
            ],
        ),
        Expr::Index { base, index, .. } => PathTree::Interior(
            NodeKind::BitSelect,
            vec![PathTree::Leaf(Some(base.clone())), expr_tree(index)],
        ),
        Expr::Part { base, .. } => PathTree::Interior(
            NodeKind::PartSelect,
            vec![PathTree::Leaf(Some(base.clone()))],
        ),
        Expr::Concat { parts, .. } => {
            PathTree::Interior(NodeKind::Concat, parts.iter().map(expr_tree).collect())
        }
        Expr::Repeat { inner, .. } => PathTree::Interior(NodeKind::Repeat, vec![expr_tree(inner)]),
    }
}

/// Collects leaves in DFS order with their ancestries (root first). The
/// first leaf is always the LHS (the Lvalue wrapper is the root's first
/// child).
fn collect_leaves(tree: &PathTree) -> Vec<LeafInfo> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    walk(tree, &mut stack, &mut out);
    out
}

fn walk(t: &PathTree, ancestry: &mut Vec<NodeKind>, out: &mut Vec<LeafInfo>) {
    match t {
        PathTree::Leaf(name) => out.push(LeafInfo {
            name: name.clone(),
            ancestry: ancestry.clone(),
        }),
        PathTree::Interior(kind, children) => {
            ancestry.push(*kind);
            for c in children {
                walk(c, ancestry, out);
            }
            ancestry.pop();
        }
    }
}

/// The leaf-to-leaf path between two leaves, given their root-first interior
/// ancestries: up from `from` to the lowest common ancestor, then down to
/// `to`. The LCA appears once; neither leaf is included.
fn path_between(from: &[NodeKind], to: &[NodeKind]) -> Path {
    let common = from
        .iter()
        .zip(to)
        .take_while(|(a, b)| a == b)
        .count()
        // Ancestries through distinct children of the same node share the
        // full prefix; the divergence point is the LCA itself, which is at
        // index `common - 1`.
        .max(1);
    let mut path: Path = from[common - 1..].iter().rev().copied().collect();
    path.extend(to[common..].iter().copied());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(src: &str, idx: usize) -> StatementFeatures {
        let unit = verilog::parse(src).unwrap();
        let module = unit.top().clone();
        let a = module.assignments()[idx].clone();
        StatementFeatures::extract(&a).unwrap()
    }

    #[test]
    fn matches_paper_fig2_example() {
        // gnt1 = req1 & ~req2 (blocking, inside an always block).
        let f = features(
            "module m(input req1, input req2, output reg gnt1);\n\
             always @(*) begin\ngnt1 = req1 & ~req2;\nend\nendmodule",
            0,
        );
        assert_eq!(f.lhs, "gnt1");
        assert_eq!(f.operand_count(), 2);
        let req1 = &f.operands[0];
        assert_eq!(req1.name, "req1");
        assert_eq!(req1.paths.len(), 2);
        // Path to the LHS leaf: [And, Rvalue, BlockingAssignment, Lvalue].
        assert!(
            req1.paths.contains(&vec![
                NodeKind::And,
                NodeKind::Rvalue,
                NodeKind::BlockingAssignment,
                NodeKind::Lvalue,
            ]),
            "missing operand→output path: {:?}",
            req1.paths
        );
        // Path to req2: [And, Not].
        assert!(
            req1.paths.contains(&vec![NodeKind::And, NodeKind::Not]),
            "missing operand→operand path: {:?}",
            req1.paths
        );
    }

    #[test]
    fn continuous_assign_uses_its_root_kind() {
        let f = features("module m(input a, output y);\nassign y = ~a;\nendmodule", 0);
        assert_eq!(f.operands[0].paths.len(), 1);
        assert_eq!(
            f.operands[0].paths[0],
            vec![
                NodeKind::Not,
                NodeKind::Rvalue,
                NodeKind::ContinuousAssign,
                NodeKind::Lvalue
            ]
        );
    }

    #[test]
    fn duplicate_occurrences_merge_into_one_operand() {
        let f = features(
            "module m(input a, input b, output y);\nassign y = (a & b) | (a ^ b);\nendmodule",
            0,
        );
        assert_eq!(f.operand_count(), 2);
        let a = &f.operands[0];
        // a occurs twice; paths from both occurrences to y (1 each) and to
        // each b occurrence (2 each) = 2*(1+2) = 6. Paths between the two
        // `a` occurrences are excluded.
        assert_eq!(a.paths.len(), 6);
    }

    #[test]
    fn literals_are_path_endpoints_but_not_operands() {
        let f = features(
            "module m(input a, output y);\nassign y = a ^ 1'b1;\nendmodule",
            0,
        );
        assert_eq!(f.operand_count(), 1);
        // a → y and a → literal.
        assert_eq!(f.operands[0].paths.len(), 2);
        assert!(f.operands[0].paths.contains(&vec![NodeKind::Xor]));
    }

    #[test]
    fn constant_only_statement_has_no_features() {
        let unit = verilog::parse(
            "module m(input c, output reg y);\nalways @(*) begin\nif (c) y = 1'b0;\nend\nendmodule",
        )
        .unwrap();
        let module = unit.top().clone();
        let a = module.assignments()[0].clone();
        assert!(StatementFeatures::extract(&a).is_none());
    }

    #[test]
    fn ternary_positions_are_distinguished() {
        let f = features(
            "module m(input c, input a, input b, output y);\nassign y = c ? a : b;\nendmodule",
            0,
        );
        let c = f.operands.iter().find(|o| o.name == "c").unwrap();
        let to_a = c
            .paths
            .iter()
            .find(|p| p.contains(&NodeKind::TernaryThen))
            .expect("path into then-branch");
        assert_eq!(
            to_a,
            &vec![
                NodeKind::TernaryCond,
                NodeKind::Ternary,
                NodeKind::TernaryThen
            ]
        );
    }

    #[test]
    fn nonblocking_root_kind() {
        let f = features(
            "module m(input clk, input d, output reg q);\nalways @(posedge clk) q <= d;\nendmodule",
            0,
        );
        assert!(f.operands[0]
            .paths
            .iter()
            .any(|p| p.contains(&NodeKind::NonBlockingAssignment)));
    }

    #[test]
    fn extract_all_skips_operandless_statements() {
        let unit = verilog::parse(
            "module m(input a, output y, output reg z);\n\
             assign y = a;\nalways @(*) z = 1'b1;\nendmodule",
        )
        .unwrap();
        let all = StatementFeatures::extract_all(unit.top());
        assert_eq!(all.len(), 1);
        assert!(all.contains_key(&StmtId(0)));
    }

    #[test]
    fn lhs_index_reads_become_operands() {
        let f = features(
            "module m(input [1:0] i, input a, output reg [3:0] y);\n\
             always @(*) begin\ny[i] = a;\nend\nendmodule",
            0,
        );
        let names: Vec<_> = f.operands.iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"i"), "{names:?}");
        assert!(names.contains(&"a"), "{names:?}");
    }
}
