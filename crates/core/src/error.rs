//! VeriBug error type.

use std::fmt;

/// Errors surfaced by the VeriBug pipeline.
#[derive(Debug)]
pub enum VeriBugError {
    /// A design failed to parse.
    Parse(verilog::ParseError),
    /// Elaboration or simulation failed.
    Sim(sim::SimError),
    /// The requested target output does not exist in the design.
    UnknownTarget {
        /// The missing target name.
        target: String,
    },
    /// The training set is unusable (empty, or single-class).
    BadDataset {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for VeriBugError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VeriBugError::Parse(e) => write!(f, "parse error: {e}"),
            VeriBugError::Sim(e) => write!(f, "simulation error: {e}"),
            VeriBugError::UnknownTarget { target } => {
                write!(f, "unknown target output `{target}`")
            }
            VeriBugError::BadDataset { detail } => write!(f, "bad dataset: {detail}"),
        }
    }
}

impl std::error::Error for VeriBugError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VeriBugError::Parse(e) => Some(e),
            VeriBugError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<verilog::ParseError> for VeriBugError {
    fn from(e: verilog::ParseError) -> Self {
        VeriBugError::Parse(e)
    }
}

impl From<sim::SimError> for VeriBugError {
    fn from(e: sim::SimError) -> Self {
        VeriBugError::Sim(e)
    }
}
