//! Trained-model persistence.
//!
//! A trained [`VeriBugModel`] is fully determined by its [`ModelConfig`]
//! (layer shapes are derived from it) plus the parameter tensors. The
//! format is a line-oriented, dependency-free text format:
//!
//! ```text
//! veribug-model v1
//! config <token_dim> <context_dim> <value_dim> <attention_dim> <mlp_hidden> <epsilon_init> <ctx_agg> <seed>
//! param <name> <rows> <cols>
//! <row-major f32 values, space-separated, one row per line>
//! ...
//! end
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::model::{ModelConfig, VeriBugModel};

/// Magic first line of the format.
const MAGIC: &str = "veribug-model v1";

/// The persist-format version string (the file's magic line). Surfaced by
/// `/healthz` and `/statusz` so operators can tell which weight format a
/// server understands.
pub fn format_version() -> &'static str {
    MAGIC
}

/// FNV-1a (64-bit) over the canonical serialized form of the model — a
/// content hash of the loaded weights. Two models hash equal iff
/// [`to_string`] renders them byte-identically, so the hash identifies
/// *which* weights a process is serving independent of file path or mtime.
/// The hash function itself lives in [`store::hash`] — the same one that
/// keys the design cache and the persistent artifact store.
pub fn content_hash(model: &VeriBugModel) -> u64 {
    store::hash::fnv1a(to_string(model).as_bytes())
}

/// [`content_hash`] rendered as the fixed-width 16-hex-digit string used
/// everywhere the hash is shown (status pages, logs, `train_log.jsonl`).
pub fn content_hash_hex(model: &VeriBugModel) -> String {
    store::hash::key_hex(content_hash(model))
}

/// Serializes a model to the text format.
pub fn to_string(model: &VeriBugModel) -> String {
    let mut out = String::new();
    let c = model.config();
    out.push_str(MAGIC);
    out.push('\n');
    let agg = match c.context_aggregation {
        crate::model::ContextAggregation::Sum => "sum",
        crate::model::ContextAggregation::Mean => "mean",
    };
    let _ = writeln!(
        out,
        "config {} {} {} {} {} {} {} {}",
        c.token_dim,
        c.context_dim,
        c.value_dim,
        c.attention_dim,
        c.mlp_hidden,
        c.epsilon_init,
        agg,
        c.seed
    );
    let params = model.params();
    for id in params.ids() {
        let t = params.value(id);
        let _ = writeln!(out, "param {} {} {}", params.name(id), t.rows(), t.cols());
        for r in 0..t.rows() {
            let row = t
                .row(r)
                .iter()
                .map(|v| format!("{v:e}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&row);
            out.push('\n');
        }
    }
    out.push_str("end\n");
    out
}

/// Errors raised while loading a model.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure.
    Io(io::Error),
    /// The text does not follow the format.
    Format {
        /// 1-based line number.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format { line, detail } => {
                write!(f, "format error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn format_err(line: usize, detail: impl Into<String>) -> LoadError {
    LoadError::Format {
        line,
        detail: detail.into(),
    }
}

/// Deserializes a model from the text format.
///
/// # Errors
///
/// Returns [`LoadError::Format`] for malformed input, unknown parameter
/// names, or shape mismatches against the config-derived architecture.
pub fn from_str(text: &str) -> Result<VeriBugModel, LoadError> {
    let mut lines = text.lines().enumerate();
    let (ln, magic) = lines.next().ok_or_else(|| format_err(1, "empty input"))?;
    if magic.trim() != MAGIC {
        return Err(format_err(ln + 1, format!("bad magic `{magic}`")));
    }
    let (ln, cfg_line) = lines
        .next()
        .ok_or_else(|| format_err(2, "missing config line"))?;
    let parts: Vec<&str> = cfg_line.split_whitespace().collect();
    if parts.len() != 9 || parts[0] != "config" {
        return Err(format_err(ln + 1, "expected `config` with 8 fields"));
    }
    let parse_usize = |s: &str, ln: usize| {
        s.parse::<usize>()
            .map_err(|e| format_err(ln + 1, format!("bad integer `{s}`: {e}")))
    };
    let config = ModelConfig {
        token_dim: parse_usize(parts[1], ln)?,
        context_dim: parse_usize(parts[2], ln)?,
        value_dim: parse_usize(parts[3], ln)?,
        attention_dim: parse_usize(parts[4], ln)?,
        mlp_hidden: parse_usize(parts[5], ln)?,
        epsilon_init: parts[6]
            .parse::<f32>()
            .map_err(|e| format_err(ln + 1, format!("bad float: {e}")))?,
        context_aggregation: match parts[7] {
            "sum" => crate::model::ContextAggregation::Sum,
            "mean" => crate::model::ContextAggregation::Mean,
            other => {
                return Err(format_err(
                    ln + 1,
                    format!("unknown context aggregation `{other}`"),
                ));
            }
        },
        seed: parts[8]
            .parse::<u64>()
            .map_err(|e| format_err(ln + 1, format!("bad seed: {e}")))?,
    };
    let mut model = VeriBugModel::new(config);

    loop {
        let Some((ln, line)) = lines.next() else {
            return Err(format_err(0, "missing `end` marker"));
        };
        let line = line.trim();
        if line == "end" {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "param" {
            return Err(format_err(
                ln + 1,
                format!("expected `param`, got `{line}`"),
            ));
        }
        let name = parts[1];
        let rows = parse_usize(parts[2], ln)?;
        let cols = parse_usize(parts[3], ln)?;
        let pid = model
            .params()
            .id_of(name)
            .ok_or_else(|| format_err(ln + 1, format!("unknown parameter `{name}`")))?;
        {
            let expected = model.params().value(pid).shape();
            if expected != (rows, cols) {
                return Err(format_err(
                    ln + 1,
                    format!("shape mismatch for `{name}`: file {rows}x{cols}, model {expected:?}"),
                ));
            }
        }
        for r in 0..rows {
            let Some((ln, row_line)) = lines.next() else {
                return Err(format_err(0, format!("truncated data for `{name}`")));
            };
            let values: Result<Vec<f32>, _> = row_line
                .split_whitespace()
                .map(|v| v.parse::<f32>())
                .collect();
            let values = values.map_err(|e| format_err(ln + 1, format!("bad float: {e}")))?;
            if values.len() != cols {
                return Err(format_err(
                    ln + 1,
                    format!("row has {} values, expected {cols}", values.len()),
                ));
            }
            let t = model.params_mut().value_mut(pid);
            for (c, v) in values.into_iter().enumerate() {
                t[(r, c)] = v;
            }
        }
    }
    Ok(model)
}

/// Saves a model to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(model: &VeriBugModel, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_string(model))
}

/// Loads a model from a file.
///
/// # Errors
///
/// Propagates I/O failures and format errors.
pub fn load(path: impl AsRef<Path>) -> Result<VeriBugModel, LoadError> {
    from_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::StatementFeatures;

    fn sample_features() -> StatementFeatures {
        let unit =
            verilog::parse("module m(input a, input b, output y);\nassign y = a & ~b;\nendmodule")
                .unwrap();
        let module = unit.top().clone();
        StatementFeatures::extract(&module.assignments()[0].clone()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = VeriBugModel::new(ModelConfig::default());
        let text = to_string(&model);
        let loaded = from_str(&text).unwrap();
        let f = sample_features();
        for values in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(
                model.predict(&f, &values),
                loaded.predict(&f, &values),
                "prediction diverged for {values:?}"
            );
        }
    }

    #[test]
    fn content_hash_tracks_weights() {
        let a = VeriBugModel::new(ModelConfig::default());
        let b = VeriBugModel::new(ModelConfig::default());
        assert_eq!(content_hash(&a), content_hash(&b), "same seed, same hash");
        let c = VeriBugModel::new(ModelConfig {
            seed: 99,
            ..ModelConfig::default()
        });
        assert_ne!(content_hash(&a), content_hash(&c), "different weights");
        let hex = content_hash_hex(&a);
        assert_eq!(hex.len(), 16);
        assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), content_hash(&a));
        assert_eq!(format_version(), "veribug-model v1");
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_str("not-a-model\n"),
            Err(LoadError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let model = VeriBugModel::new(ModelConfig::default());
        let text = to_string(&model);
        // Corrupt one param header's shape.
        let corrupted = text.replacen("param tok.table 41 16", "param tok.table 41 17", 1);
        if corrupted != text {
            assert!(matches!(
                from_str(&corrupted),
                Err(LoadError::Format { .. })
            ));
        }
    }

    #[test]
    fn rejects_truncation() {
        let model = VeriBugModel::new(ModelConfig::default());
        let text = to_string(&model);
        let cut = &text[..text.len() / 2];
        assert!(from_str(cut).is_err());
    }

    /// Writes `content` to a scratch file and runs [`load`] against it.
    fn load_from_file(tag: &str, content: &str) -> Result<VeriBugModel, LoadError> {
        let dir = std::env::temp_dir().join("veribug-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{}.vbm", std::process::id()));
        std::fs::write(&path, content).unwrap();
        let result = load(&path);
        std::fs::remove_file(&path).ok();
        result
    }

    #[test]
    fn load_rejects_truncated_file() {
        let text = to_string(&VeriBugModel::new(ModelConfig::default()));
        // Cut mid-tensor: the `end` marker and part of the data are gone.
        let err = load_from_file("truncated", &text[..text.len() / 2]).unwrap_err();
        let LoadError::Format { detail, .. } = err else {
            panic!("expected Format error, got {err:?}");
        };
        assert!(
            detail.contains("truncated") || detail.contains("expected"),
            "detail names the truncation: {detail}"
        );
    }

    #[test]
    fn load_rejects_corrupt_config_header() {
        let text = to_string(&VeriBugModel::new(ModelConfig::default()));
        let corrupted = text.replacen("config ", "config bogus ", 1);
        assert_ne!(corrupted, text, "config line was present to corrupt");
        let err = load_from_file("corrupt-header", &corrupted).unwrap_err();
        let LoadError::Format { line, detail } = err else {
            panic!("expected Format error, got {err:?}");
        };
        assert_eq!(line, 2, "config is the second line");
        assert!(
            detail.contains("config") || detail.contains("integer"),
            "{detail}"
        );
    }

    #[test]
    fn load_rejects_wrong_format_version() {
        let text = to_string(&VeriBugModel::new(ModelConfig::default()));
        let future = text.replacen("veribug-model v1", "veribug-model v2", 1);
        let err = load_from_file("wrong-version", &future).unwrap_err();
        let LoadError::Format { line, detail } = err else {
            panic!("expected Format error, got {err:?}");
        };
        assert_eq!(line, 1);
        assert!(detail.contains("bad magic"), "{detail}");
        assert!(
            err_display_mentions_line(&future),
            "Display carries the line number"
        );
    }

    fn err_display_mentions_line(text: &str) -> bool {
        from_str(text)
            .err()
            .map(|e| e.to_string().contains("line 1"))
            .unwrap_or(false)
    }

    #[test]
    fn load_surfaces_io_errors_for_missing_files() {
        let missing = std::env::temp_dir().join("veribug-persist-test/definitely-not-here.vbm");
        let err = load(&missing).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)), "got {err:?}");
        assert!(err.to_string().contains("i/o error"));
    }

    #[test]
    fn save_and_load_via_file() {
        let model = VeriBugModel::new(ModelConfig {
            seed: 42,
            ..ModelConfig::default()
        });
        let dir = std::env::temp_dir().join("veribug-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.vbm");
        save(&model, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.config(), model.config());
        let f = sample_features();
        assert_eq!(
            model.predict(&f, &[true, false]),
            loaded.predict(&f, &[true, false])
        );
        std::fs::remove_file(&path).ok();
    }
}
