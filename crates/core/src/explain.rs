//! Explanation generation (paper Sec. IV-D): attention maps, aggregated
//! maps `F_t`/`C_t`, suspiciousness scores, and the final heatmap `H_t`.

use std::collections::{BTreeMap, HashMap};

use crate::features::StatementFeatures;
use crate::model::VeriBugModel;
use crate::train::{operand_positions, operand_values};
use cdfg::{Cdfg, ConeOfInfluence, Slice, Vdg};
use sim::{Trace, TraceLabel};
use verilog::{Module, StmtId};

/// The default suspiciousness threshold (paper: 0.10).
pub const DEFAULT_THRESHOLD: f32 = 0.10;

/// How many cycles before a target divergence still count as
/// "failure-relevant" when aggregating failing-trace attention. Covers
/// sequential propagation from a buggy register update to the output.
pub const DEFAULT_FAILURE_WINDOW: u32 = 1;

/// One trace with its label and (for failing traces) the cycles where the
/// target output diverged from the golden design.
#[derive(Debug, Clone)]
pub struct LabelledTrace<'t> {
    /// The (mutant) trace to analyze.
    pub trace: &'t Trace,
    /// Failing (`T_f`) or correct (`T_c`).
    pub label: TraceLabel,
    /// Divergence cycles, when known. Empty means "unknown": the whole
    /// failing trace is aggregated (the paper's plain trace-level scheme).
    pub failure_cycles: Vec<u32>,
}

impl<'t> LabelledTrace<'t> {
    /// Wraps a trace with a label and no divergence information.
    pub fn new(label: TraceLabel, trace: &'t Trace) -> Self {
        LabelledTrace {
            trace,
            label,
            failure_cycles: Vec::new(),
        }
    }
}

/// Per-statement aggregated attention: mean operand importance over every
/// execution seen in one trace set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StmtAttention {
    /// Operand names, aligned with `weights`.
    pub operands: Vec<String>,
    /// Mean attention weight per operand.
    pub weights: Vec<f32>,
    /// Number of executions averaged.
    pub count: usize,
}

/// An aggregated attention map over a set of traces (the paper's `F_t` or
/// `C_t`).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct AttentionMap {
    /// Mean attention per statement in the dynamic slice.
    pub per_stmt: BTreeMap<StmtId, StmtAttention>,
}

impl AttentionMap {
    /// True when no statement was observed.
    pub fn is_empty(&self) -> bool {
        self.per_stmt.is_empty()
    }
}

/// Why a statement entered the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SuspicionReason {
    /// Present only in failing traces.
    OnlyInFailing,
    /// Present in both; attention differs above the threshold.
    DivergentAttention,
}

/// One heatmap entry: a candidate buggy statement with its `F_t` weights.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeatmapEntry {
    /// Operand names, aligned with `weights`.
    pub operands: Vec<String>,
    /// The failing-trace importance scores (copied from `F_t`).
    pub weights: Vec<f32>,
    /// The suspiciousness score `d(F_t(l), C_t(l))` (1.0 for statements
    /// absent from `C_t`).
    pub suspiciousness: f32,
    /// Why the statement is in the heatmap.
    pub reason: SuspicionReason,
}

/// The final heatmap `H_t`: candidate buggy statements only.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Heatmap {
    /// Heatmap entries by statement.
    pub entries: BTreeMap<StmtId, HeatmapEntry>,
    /// The threshold used.
    pub threshold: f32,
}

impl Heatmap {
    /// The statement with the highest suspiciousness, if any. Ties break
    /// toward the lowest statement id (deterministic).
    pub fn top1(&self) -> Option<StmtId> {
        self.entries
            .iter()
            .max_by(|a, b| {
                a.1.suspiciousness
                    .total_cmp(&b.1.suspiciousness)
                    .then(b.0.cmp(a.0))
            })
            .map(|(id, _)| *id)
    }

    /// Statements ranked by decreasing suspiciousness.
    pub fn ranked(&self) -> Vec<(StmtId, f32)> {
        let mut v: Vec<(StmtId, f32)> = self
            .entries
            .iter()
            .map(|(id, e)| (*id, e.suspiciousness))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of candidate statements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing crossed the threshold.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The Explainer: a trained model applied to labelled traces of one design.
#[derive(Debug)]
pub struct Explainer<'m> {
    model: &'m VeriBugModel,
    features: BTreeMap<StmtId, StatementFeatures>,
    slice: Slice,
    failure_window: u32,
    /// Sequential depth of each slice statement: the minimum number of
    /// clock cycles for a change at its defined signal to reach the target
    /// (from the cone-of-influence analysis). A buggy execution of a
    /// statement at depth δ symptomatizes δ cycles later, so failing-trace
    /// aggregation aligns each statement's window by its own δ.
    depth: BTreeMap<StmtId, u32>,
    /// Memoized attention per (statement, operand values): executions of
    /// the same statement with the same values always produce the same
    /// weights, and traces repeat them constantly.
    cache: HashMap<(StmtId, Vec<bool>), Vec<f32>>,
    /// Per-statement map from feature-operand index to record read-order
    /// position (execution records store operand values positionally).
    positions: BTreeMap<StmtId, Vec<Option<usize>>>,
}

impl<'m> Explainer<'m> {
    /// Prepares an explainer for `module` and target output `t`.
    pub fn new(model: &'m VeriBugModel, module: &Module, target: &str) -> Self {
        let cdfg = Cdfg::build(module);
        let vdg = Vdg::from_cdfg(module, &cdfg);
        let slice = Slice::of_target_with(&cdfg, &vdg, target);
        let coi = ConeOfInfluence::compute(&vdg, target, 16);
        let mut depth = BTreeMap::new();
        for node in cdfg.nodes() {
            if !slice.contains(node.stmt) {
                continue;
            }
            let signal_depth = if node.lhs == target {
                0
            } else {
                coi.min_cycles.get(&node.lhs).copied().unwrap_or(0)
            };
            // A non-blocking assignment executed at cycle c commits its
            // value at the clock edge, so its effect is visible from cycle
            // c+1: the statement sits one cycle deeper than its signal.
            let commit_delay = u32::from(node.kind == verilog::AssignKind::NonBlocking);
            depth.insert(node.stmt, signal_depth + commit_delay);
        }
        let features = StatementFeatures::extract_all(module);
        // Records carry positional operand values; resolve each feature
        // operand's position once, against the same elaboration the
        // simulator records under. Designs that fail to elaborate produce
        // no traces, so an empty map is fine there.
        let positions = match sim::Netlist::elaborate(module) {
            Ok(netlist) => features
                .iter()
                .map(|(id, f)| (*id, operand_positions(f, &netlist)))
                .collect(),
            Err(_) => BTreeMap::new(),
        };
        Explainer {
            model,
            features,
            slice,
            failure_window: DEFAULT_FAILURE_WINDOW,
            depth,
            cache: HashMap::new(),
            positions,
        }
    }

    /// Overrides the failure-window width (cycles before a divergence that
    /// still count as failure-relevant).
    pub fn with_failure_window(mut self, window: u32) -> Self {
        self.failure_window = window;
        self
    }

    /// The static slice the explainer restricts attention to.
    pub fn slice(&self) -> &Slice {
        &self.slice
    }

    /// Aggregates attention over every execution (within the target's
    /// dynamic slice) across `traces`, producing one attention map.
    pub fn attention_map(&mut self, traces: &[&Trace]) -> AttentionMap {
        self.attention_map_filtered(traces, |_, _| true)
    }

    /// Like [`Explainer::attention_map`], keeping only executions for
    /// which `keep(statement, cycle)` holds.
    pub fn attention_map_filtered(
        &mut self,
        traces: &[&Trace],
        keep: impl Fn(StmtId, u32) -> bool,
    ) -> AttentionMap {
        struct Acc {
            operands: Vec<String>,
            sums: Vec<f32>,
            count: usize,
        }
        let mut acc: BTreeMap<StmtId, Acc> = BTreeMap::new();
        for trace in traces {
            for cyc in &trace.cycles {
                for exec in &cyc.execs {
                    // Dynamic slice: executed AND in the static slice of t.
                    if !self.slice.contains(exec.stmt) || !keep(exec.stmt, cyc.cycle) {
                        continue;
                    }
                    let Some(f) = self.features.get(&exec.stmt) else {
                        continue;
                    };
                    let Some(values) = self
                        .positions
                        .get(&exec.stmt)
                        .and_then(|p| operand_values(p, exec))
                    else {
                        continue;
                    };
                    static CACHE_HITS: obs::LazyCounter =
                        obs::LazyCounter::new("explain.attention_cache_hits");
                    static CACHE_MISSES: obs::LazyCounter =
                        obs::LazyCounter::new("explain.attention_cache_misses");
                    /// Shannon entropy (nats) of each freshly computed
                    /// attention distribution.
                    static ENTROPY: obs::LazyHistogram =
                        obs::LazyHistogram::new_micros("explain.attention_entropy");
                    let weights = match self.cache.entry((exec.stmt, values.clone())) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            CACHE_HITS.incr();
                            e.get().clone()
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            CACHE_MISSES.incr();
                            let weights = self.model.predict(f, &values).1;
                            if obs::enabled() {
                                ENTROPY.record_f64(attention_entropy(&weights));
                            }
                            e.insert(weights).clone()
                        }
                    };
                    let slot = acc.entry(exec.stmt).or_insert_with(|| Acc {
                        operands: f.operands.iter().map(|o| o.name.clone()).collect(),
                        sums: vec![0.0; weights.len()],
                        count: 0,
                    });
                    for (s, w) in slot.sums.iter_mut().zip(&weights) {
                        *s += w;
                    }
                    slot.count += 1;
                }
            }
        }
        AttentionMap {
            per_stmt: acc
                .into_iter()
                .map(|(id, a)| {
                    let n = a.count.max(1) as f32;
                    (
                        id,
                        StmtAttention {
                            operands: a.operands,
                            weights: a.sums.into_iter().map(|s| s / n).collect(),
                            count: a.count,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Builds the heatmap `H_t` from failing and correct attention maps
    /// using the paper's three-case comparison and the given threshold.
    pub fn heatmap(failing: &AttentionMap, correct: &AttentionMap, threshold: f32) -> Heatmap {
        let mut entries = BTreeMap::new();
        for (id, f_att) in &failing.per_stmt {
            match correct.per_stmt.get(id) {
                // Present only in F_t: suspicious; copy its weights.
                None => {
                    entries.insert(
                        *id,
                        HeatmapEntry {
                            operands: f_att.operands.clone(),
                            weights: f_att.weights.clone(),
                            suspiciousness: 1.0,
                            reason: SuspicionReason::OnlyInFailing,
                        },
                    );
                }
                // Present in both: compare attention with the normalized
                // norm-1 distance (min 0, max 2 → divide by 2).
                Some(c_att) => {
                    let d = suspiciousness(&f_att.weights, &c_att.weights);
                    if d > threshold {
                        entries.insert(
                            *id,
                            HeatmapEntry {
                                operands: f_att.operands.clone(),
                                weights: f_att.weights.clone(),
                                suspiciousness: d,
                                reason: SuspicionReason::DivergentAttention,
                            },
                        );
                    }
                }
            }
            // Statements present only in C_t are *not suspicious*: failing
            // traces never executed them, so they cannot have caused the
            // symptom (paper case 1).
        }
        Heatmap { entries, threshold }
    }

    /// End-to-end explanation: split labelled runs into `T_f`/`T_c`,
    /// aggregate both maps, and produce the heatmap.
    ///
    /// Two refinements over the plain trace-level scheme (both documented
    /// in DESIGN.md):
    ///
    /// - **Failure-centered aggregation.** When a failing trace carries its
    ///   divergence cycles, only executions within
    ///   [`DEFAULT_FAILURE_WINDOW`] cycles *before* (and including) a
    ///   divergence contribute to `F_t`. Executions far from any symptom
    ///   carry correct-behavior statistics and would dilute the comparison.
    /// - **Masked-cycle fallback for `C_t`.** When *no* run is fully
    ///   correct (short aggressive stimuli can expose a bug in every run),
    ///   the correct map is built from the non-divergent cycles of the
    ///   failing traces instead of being empty, which would otherwise mark
    ///   every statement "only-in-failing" and destroy the ranking.
    pub fn explain(
        &mut self,
        runs: &[LabelledTrace<'_>],
        threshold: f32,
    ) -> (Heatmap, AttentionMap, AttentionMap) {
        let window = self.failure_window;
        let failing: Vec<&LabelledTrace<'_>> = runs
            .iter()
            .filter(|r| r.label == TraceLabel::Failing)
            .collect();
        let correct: Vec<&Trace> = runs
            .iter()
            .filter(|r| r.label == TraceLabel::Correct)
            .map(|r| r.trace)
            .collect();

        // F_t: failure-centered when divergence cycles are known. Each
        // statement's window is aligned by its sequential depth δ: a buggy
        // execution at cycle k−δ symptomatizes at cycle k, so the
        // executions that can have caused the symptom at k lie in
        // [k−δ−window, k−δ].
        let depth = self.depth.clone();
        let delta = move |stmt: StmtId| depth.get(&stmt).copied().unwrap_or(0);
        let mut f_map = AttentionMap::default();
        for run in &failing {
            let partial = if run.failure_cycles.is_empty() {
                self.attention_map(&[run.trace])
            } else {
                let cycles = run.failure_cycles.clone();
                let delta = delta.clone();
                self.attention_map_filtered(&[run.trace], move |stmt, c| {
                    let d = delta(stmt);
                    cycles.iter().any(|&k| {
                        let hi = k.saturating_sub(d);
                        c <= hi && hi.saturating_sub(window) <= c
                    })
                })
            };
            merge_maps(&mut f_map, &partial);
        }

        // C_t: fully-correct runs, augmented with the masked (far-from-
        // failure) cycles of failing runs — both exhibit correct behavior,
        // and the extra executions sharpen the comparison baseline.
        let mut c_map = self.attention_map(&correct);
        for run in &failing {
            if run.failure_cycles.is_empty() {
                continue;
            }
            let cycles = run.failure_cycles.clone();
            let delta = delta.clone();
            let partial = self.attention_map_filtered(&[run.trace], move |stmt, c| {
                let d = delta(stmt);
                cycles.iter().all(|&k| {
                    let hi = k.saturating_sub(d);
                    c + window + 1 < hi.max(1) || hi + 2 < c
                })
            });
            merge_maps(&mut c_map, &partial);
        }

        let heatmap = Self::heatmap(&f_map, &c_map, threshold);
        (heatmap, f_map, c_map)
    }
}

/// Count-weighted merge of one attention map into another.
fn merge_maps(into: &mut AttentionMap, from: &AttentionMap) {
    for (id, att) in &from.per_stmt {
        match into.per_stmt.get_mut(id) {
            None => {
                into.per_stmt.insert(*id, att.clone());
            }
            Some(cur) => {
                let old = cur.count as f32;
                let new = att.count as f32;
                let total = old + new;
                if total == 0.0 {
                    continue;
                }
                for (w, nw) in cur.weights.iter_mut().zip(&att.weights) {
                    *w = (*w * old + nw * new) / total;
                }
                cur.count += att.count;
            }
        }
    }
}

/// The paper's suspiciousness score: norm-1 distance between two attention
/// vectors, min-max normalized with `min = 0, max = 2`.
///
/// When the operand sets differ in length (a variable-misuse mutation can
/// change the operand list), missing positions count as zero weight.
pub fn suspiciousness(f_weights: &[f32], c_weights: &[f32]) -> f32 {
    let n = f_weights.len().max(c_weights.len());
    let mut l1 = 0.0f32;
    for i in 0..n {
        let a = f_weights.get(i).copied().unwrap_or(0.0);
        let b = c_weights.get(i).copied().unwrap_or(0.0);
        l1 += (a - b).abs();
    }
    l1 / 2.0
}

/// Shannon entropy (nats) of an attention distribution. The weights are
/// renormalized first so numerically drifted vectors still yield a proper
/// distribution; zero weights contribute nothing.
///
/// Used both for the `explain.attention_entropy` histogram and by the
/// `accuracy_bench` harness, which reports the entropy distribution of
/// every heatmap entry (a flat distribution means the model has nothing
/// to say about a statement; a peaked one is a confident attribution).
pub fn attention_entropy(weights: &[f32]) -> f64 {
    let total: f64 = weights.iter().map(|&w| f64::from(w.max(0.0))).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &w in weights {
        let p = f64::from(w.max(0.0)) / total;
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, VeriBugModel};
    use sim::{Simulator, TestbenchGen};

    fn arb() -> Module {
        verilog::parse(
            "module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);\n\
             reg state;\n\
             always @(posedge clk) state <= req1 ^ req2;\n\
             always @(*) begin\n\
             if (state) gnt1 = req1 & ~req2;\n\
             else gnt1 = req1 | req2;\n\
             gnt2 = req2 & ~req1;\n\
             end\nendmodule",
        )
        .unwrap()
        .top()
        .clone()
    }

    #[test]
    fn suspiciousness_bounds() {
        assert_eq!(suspiciousness(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        // Completely disjoint distributions -> max distance 2, normalized 1.
        assert!((suspiciousness(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        // Length mismatch: missing weights count as zero.
        assert!((suspiciousness(&[1.0], &[0.5, 0.5]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn attention_map_covers_dynamic_slice_only() {
        let module = arb();
        let model = VeriBugModel::new(ModelConfig::default());
        let mut sim = Simulator::new(&module).unwrap();
        let stim = TestbenchGen::new(3).generate(sim.netlist(), 32);
        let trace = sim.run(&stim).unwrap();
        let mut ex = Explainer::new(&model, &module, "gnt1");
        let map = ex.attention_map(&[&trace]);
        // gnt2's statement (id 3) is outside gnt1's slice.
        assert!(!map.per_stmt.contains_key(&StmtId(3)));
        assert!(!map.is_empty());
        // Every weight vector is a distribution.
        for att in map.per_stmt.values() {
            let sum: f32 = att.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "not a distribution: {att:?}");
            assert!(att.count > 0);
        }
    }

    #[test]
    fn heatmap_three_cases() {
        let mk = |stmts: &[(u32, Vec<f32>)]| AttentionMap {
            per_stmt: stmts
                .iter()
                .map(|(id, w)| {
                    (
                        StmtId(*id),
                        StmtAttention {
                            operands: (0..w.len()).map(|i| format!("op{i}")).collect(),
                            weights: w.clone(),
                            count: 1,
                        },
                    )
                })
                .collect(),
        };
        // s0: identical in both (not suspicious).
        // s1: diverges strongly (suspicious).
        // s2: only in failing (suspicious, score 1.0).
        // s3: only in correct (ignored).
        let f = mk(&[
            (0, vec![0.5, 0.5]),
            (1, vec![0.9, 0.1]),
            (2, vec![0.3, 0.7]),
        ]);
        let c = mk(&[(0, vec![0.5, 0.5]), (1, vec![0.1, 0.9]), (3, vec![1.0])]);
        let h = Explainer::heatmap(&f, &c, DEFAULT_THRESHOLD);
        assert_eq!(h.len(), 2);
        assert!(!h.entries.contains_key(&StmtId(0)));
        assert!(!h.entries.contains_key(&StmtId(3)));
        let s1 = &h.entries[&StmtId(1)];
        assert_eq!(s1.reason, SuspicionReason::DivergentAttention);
        assert!((s1.suspiciousness - 0.8).abs() < 1e-6);
        let s2 = &h.entries[&StmtId(2)];
        assert_eq!(s2.reason, SuspicionReason::OnlyInFailing);
        assert_eq!(s2.suspiciousness, 1.0);
        // top-1 is the only-in-failing statement (score 1.0).
        assert_eq!(h.top1(), Some(StmtId(2)));
        let ranked = h.ranked();
        assert_eq!(ranked[0].0, StmtId(2));
        assert_eq!(ranked[1].0, StmtId(1));
    }

    #[test]
    fn below_threshold_statements_are_excluded() {
        let f = AttentionMap {
            per_stmt: [(
                StmtId(0),
                StmtAttention {
                    operands: vec!["a".into(), "b".into()],
                    weights: vec![0.52, 0.48],
                    count: 4,
                },
            )]
            .into_iter()
            .collect(),
        };
        let c = AttentionMap {
            per_stmt: [(
                StmtId(0),
                StmtAttention {
                    operands: vec!["a".into(), "b".into()],
                    weights: vec![0.48, 0.52],
                    count: 4,
                },
            )]
            .into_iter()
            .collect(),
        };
        let h = Explainer::heatmap(&f, &c, DEFAULT_THRESHOLD);
        assert!(h.is_empty());
        assert_eq!(h.top1(), None);
    }
}
