//! # veribug
//!
//! A from-scratch Rust reproduction of **VeriBug: An Attention-Based
//! Framework for Bug Localization in Hardware Designs** (DATE 2024).
//!
//! VeriBug learns Verilog *execution semantics* from simulation traces —
//! free supervision, no labeled bug corpus — and repurposes the learned
//! attention weights as operand importance scores. Comparing aggregated
//! attention between failing (`T_f`) and correct (`T_c`) traces yields a
//! suspiciousness score per design statement and a heatmap `H_t` of likely
//! root causes.
//!
//! The pipeline, end to end:
//!
//! 1. [`features`] — dynamic slicing + operand contexts (leaf-to-leaf AST
//!    paths), paper Sec. IV-B;
//! 2. [`model`] — PathRNN (LSTM) context embeddings, the aggregation layer
//!    with learnable ε-skip, dot-product attention, and the output-bit
//!    predictor, Sec. IV-C;
//! 3. [`mod@train`] — dataset construction from RVDG synthetic designs and the
//!    regularized class-weighted loss, Secs. IV-C and V;
//! 4. [`explain`] — attention maps, `F_t`/`C_t` aggregation, suspiciousness
//!    and heatmaps, Sec. IV-D;
//! 5. [`coverage`] — top-1 bug-coverage scoring, Sec. VI-A;
//! 6. [`render`] — Fig. 4-style heatmap rendering.
//!
//! ## Quick start: train on synthetic designs, localize an injected bug
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug::{
//!     coverage::coverage_for_mutants,
//!     model::{ModelConfig, VeriBugModel},
//!     train::{self, Dataset, TrainConfig},
//! };
//! use mutate::{BugBudget, Campaign};
//! use rvdg::{Generator, RvdgConfig};
//!
//! // 1. Train on a small synthetic corpus.
//! let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 1)
//!     .generate_corpus(2)?
//!     .into_iter()
//!     .map(|d| d.module)
//!     .collect();
//! let dataset = Dataset::from_designs(&corpus, 1, 16, 1)?;
//! let mut model = VeriBugModel::new(ModelConfig::default());
//! train::train(&mut model, &dataset, &TrainConfig { epochs: 1, ..Default::default() })?;
//!
//! // 2. Inject a bug and localize it.
//! let golden = verilog::parse(
//!     "module m(input a, input b, input c, output y);\n\
//!      wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule",
//! )?.top().clone();
//! let mutants = Campaign::new(5).run(&golden, "y", &BugBudget {
//!     negation: 1, operation: 0, misuse: 0,
//! })?;
//! let (cov, _outcomes) = coverage_for_mutants(&model, &mutants, "y");
//! assert_eq!(cov.injected, mutants.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod error;
pub mod explain;
pub mod features;
pub mod introspect;
pub mod localize;
pub mod model;
pub mod persist;
pub mod render;
pub mod train;

pub use coverage::{coverage_for_mutants, localize_mutant, Coverage, LocalizationOutcome};
pub use error::VeriBugError;
pub use explain::{
    suspiciousness, AttentionMap, Explainer, Heatmap, HeatmapEntry, StmtAttention, SuspicionReason,
    DEFAULT_THRESHOLD,
};
pub use features::{OperandContext, Path, StatementFeatures};
pub use introspect::{AttributionReport, OperandAttribution, StmtAttribution};
pub use localize::{LocalizeOptions, LocalizeReport, Suspect};
pub use model::{ContextAggregation, Forward, ModelConfig, Sample, VeriBugModel};
pub use persist::{load as load_model, save as save_model, LoadError};
pub use render::{render_attention_map, render_comparison, render_heatmap, Palette, RenderOptions};
pub use train::{
    append_train_log, evaluate, train, Dataset, DatasetEntry, EpochStats, EvalMetrics, TrainConfig,
    TrainReport,
};
