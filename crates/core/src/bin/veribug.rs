//! The `veribug` command-line tool: train, inject, localize, analyze, dump.
//!
//! ```text
//! veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
//! veribug localize --golden g.v --buggy b.v --target T --model model.vbm
//!                  [--runs N] [--cycles N] [--threshold X] [--ansi]
//! veribug inject   --design g.v --target T [--negation N] [--operation N]
//!                  [--misuse N] [--seed S] [--out-dir DIR]
//! veribug analyze  --design f.v --target T
//! veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd
//! ```
//!
//! Every subcommand also accepts `--obs <path>` (or the `VERIBUG_OBS`
//! environment variable) to write a Chrome trace / JSON-lines profile of the
//! run, and `--quiet` to suppress progress lines (see `veribug-obs`).

use std::collections::HashMap;
use std::process::ExitCode;

use mutate::{cosimulate_against, golden_traces, BugBudget, Campaign};
use rvdg::{Generator, RvdgConfig};
use sim::{Simulator, TestbenchGen, TraceLabel};
use veribug::coverage::grouped_heatmap;
use veribug::explain::LabelledTrace;
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::render::render_comparison;
use veribug::train::{self, Dataset, TrainConfig};
use veribug::{persist, Explainer, DEFAULT_THRESHOLD};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(&args[1..]);
    obs::init(opts.get("obs").map(String::as_str));
    obs::set_quiet(opts.contains_key("quiet"));
    let result = match command.as_str() {
        "train" => cmd_train(&opts),
        "localize" => cmd_localize(&opts),
        "inject" => cmd_inject(&opts),
        "analyze" => cmd_analyze(&opts),
        "vcd" => cmd_vcd(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    obs::report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
veribug — attention-based bug localization for Verilog designs

USAGE:
  veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
  veribug localize --golden g.v --buggy b.v --target T --model model.vbm
                   [--runs N] [--cycles N] [--threshold X] [--ansi]
  veribug inject   --design g.v --target T [--negation N] [--operation N]
                   [--misuse N] [--seed S] [--out-dir DIR]
  veribug analyze  --design f.v --target T
  veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd

Every subcommand also accepts:
  --obs PATH   write a Chrome trace (or .jsonl event log) of the run
  --quiet      suppress progress lines on stderr";

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    out.insert(key.to_owned(), v.clone());
                    i += 2;
                }
                None => {
                    out.insert(key.to_owned(), "true".to_owned());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn required<'o>(opts: &'o HashMap<String, String>, key: &str) -> Result<&'o str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn numeric<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|e| format!("bad value for --{key}: {e}")),
    }
}

fn load_module(path: &str) -> Result<verilog::Module, Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(verilog::parse(&source)
        .map_err(|e| format!("{path}: {e}"))?
        .top()
        .clone())
}

fn cmd_train(opts: &HashMap<String, String>) -> CmdResult {
    let out = required(opts, "out")?;
    let designs: usize = numeric(opts, "designs", 32)?;
    let epochs: usize = numeric(opts, "epochs", 80)?;
    let seed: u64 = numeric(opts, "seed", 1234)?;

    obs::progress!("generating {designs} RVDG designs (seed {seed})...");
    let corpus: Vec<_> = {
        let _span = obs::span("generate");
        Generator::new(RvdgConfig::default(), seed)
            .generate_corpus(designs)?
            .into_iter()
            .map(|d| d.module)
            .collect()
    };
    let dataset = {
        let _span = obs::span("simulate");
        Dataset::from_designs(&corpus, seed ^ 1, 64, 3)?
    };
    obs::progress!("dataset: {} unique statement executions", dataset.len());
    let mut model = VeriBugModel::new(ModelConfig::default());
    let report = train::train(
        &mut model,
        &dataset,
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    )?;
    obs::progress!(
        "trained {epochs} epochs; loss {:.4} -> {:.4}",
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0)
    );
    persist::save(&model, out)?;
    obs::progress!("model written to {out}");
    Ok(())
}

fn cmd_localize(opts: &HashMap<String, String>) -> CmdResult {
    let (golden, buggy) = {
        let _span = obs::span("parse");
        (
            load_module(required(opts, "golden")?)?,
            load_module(required(opts, "buggy")?)?,
        )
    };
    let target = required(opts, "target")?;
    let model = persist::load(required(opts, "model")?)?;
    let runs: usize = numeric(opts, "runs", 160)?;
    let cycles: usize = numeric(opts, "cycles", 16)?;
    let threshold: f32 = numeric(opts, "threshold", DEFAULT_THRESHOLD)?;
    let ansi = opts.contains_key("ansi");

    let mut golden_sim = {
        let _span = obs::span("elaborate");
        Simulator::new(&golden)?
    };
    let target_id = golden_sim
        .netlist()
        .signal_id(target)
        .ok_or_else(|| format!("unknown target signal {target}"))?;
    let stimuli = TestbenchGen::new(0xD0_17)
        .with_hold_probability(0.8)
        .generate_many(golden_sim.netlist(), cycles, runs);
    // Reuse the simulator already built for stimulus generation instead of
    // elaborating the golden design a second time inside cosimulation.
    let golden_runs = {
        let _span = obs::span("simulate");
        golden_traces(&mut golden_sim, &stimuli)?
    };
    let labelled = {
        let _span = obs::span("campaign");
        cosimulate_against(&golden_runs, target_id, &buggy, &stimuli)?
    };
    let failing = labelled
        .iter()
        .filter(|r| r.label == TraceLabel::Failing)
        .count();
    obs::progress!(
        "{failing}/{} runs expose a failure at {target}",
        labelled.len()
    );
    if failing == 0 {
        return Err("no failing runs: nothing to localize".into());
    }

    let runs_view: Vec<LabelledTrace<'_>> = labelled
        .iter()
        .map(|r| LabelledTrace {
            trace: &r.trace,
            label: r.label,
            failure_cycles: if r.label == TraceLabel::Failing {
                r.failure_cycles()
            } else {
                Vec::new()
            },
        })
        .collect();
    let _explain_span = obs::span("explain");
    let mut explainer = Explainer::new(&model, &buggy, target);
    let heatmap = grouped_heatmap(
        &mut explainer,
        &runs_view,
        threshold,
        veribug::coverage::DEFAULT_RUN_GROUPS,
    );
    if heatmap.is_empty() {
        println!("heatmap is empty: no statement crossed the {threshold} threshold");
        return Ok(());
    }
    println!("suspicious statements (most suspicious first):");
    for (stmt, sus) in heatmap.ranked() {
        let line = buggy
            .assignment(stmt)
            .map(|a| format!("{} = {}", a.lhs.base, verilog::print_expr(&a.rhs)))
            .unwrap_or_else(|| "<unknown>".to_owned());
        println!("  {sus:.3}  {stmt}  {line}");
    }
    // Render the comparison view for the top candidates.
    let (_, _, c_map) = explainer.explain(&runs_view, threshold);
    println!("\n{}", render_comparison(&buggy, &heatmap, &c_map, ansi));
    Ok(())
}

fn cmd_inject(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let budget = BugBudget {
        negation: numeric(opts, "negation", 2)?,
        operation: numeric(opts, "operation", 2)?,
        misuse: numeric(opts, "misuse", 2)?,
    };
    let seed: u64 = numeric(opts, "seed", 7)?;
    let out_dir = opts.get("out-dir").cloned();

    let mutants = Campaign::new(seed).run(&design, target, &budget)?;
    println!(
        "{} mutants produced, {} observable at {target}",
        mutants.len(),
        mutants.iter().filter(|m| m.observable).count()
    );
    for (i, m) in mutants.iter().enumerate() {
        println!(
            "  mutant {i}: {} at {} ({})",
            m.site.kind,
            m.site.stmt,
            if m.observable { "observable" } else { "masked" }
        );
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir)?;
            let path = format!("{dir}/mutant_{i}.v");
            std::fs::write(&path, &m.source)?;
        }
    }
    if let Some(dir) = &out_dir {
        println!("mutant sources written to {dir}/");
    }
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let vdg = cdfg::Vdg::build(&design);
    let dep = cdfg::dependencies_of(&vdg, target);
    let slice = cdfg::Slice::of_target(&design, target);
    let coi = cdfg::ConeOfInfluence::compute(&vdg, target, 8);
    println!("module {}", design.name);
    println!("target {target}");
    println!(
        "Dep_t ({}): {}",
        dep.len(),
        dep.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    println!("static slice ({} statements):", slice.len());
    for stmt in &slice.stmts {
        if let Some(a) = design.assignment(*stmt) {
            let depth = coi.min_cycles.get(&a.lhs.base).copied().unwrap_or(0);
            println!(
                "  {stmt} (depth {depth}): {} = {}",
                a.lhs.base,
                verilog::print_expr(&a.rhs)
            );
        }
    }
    Ok(())
}

fn cmd_vcd(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let out = required(opts, "out")?;
    let cycles: usize = numeric(opts, "cycles", 64)?;
    let seed: u64 = numeric(opts, "seed", 1)?;
    let mut sim = Simulator::new(&design)?;
    let stim = TestbenchGen::new(seed).generate(sim.netlist(), cycles);
    let trace = sim.run(&stim)?;
    std::fs::write(out, sim::to_vcd(sim.netlist(), &trace, 10))?;
    println!("{cycles} cycles dumped to {out}");
    Ok(())
}
