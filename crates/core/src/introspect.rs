//! Structured attention introspection: per-statement, per-operand
//! attribution reports built from a localization run.
//!
//! The explainer's heatmap already carries everything the paper's Fig. 4
//! visualizes — failing-trace attention `F_t`, the correct-trace baseline
//! `C_t`, and the suspiciousness ranking — but only as loose maps. This
//! module flattens them into one ordered [`AttributionReport`] with a
//! canonical JSON rendering, so `veribug explain --attention` and
//! `POST /v1/explain` produce byte-identical attributions (a test asserts
//! it). Rendering is deterministic: field order is fixed in code, floats
//! go through [`obs::json::write_f64`], and nothing run-varying enters
//! the output.

use crate::explain::SuspicionReason;
use crate::features::StatementFeatures;
use crate::localize::LocalizeReport;
use crate::model::VeriBugModel;
use crate::persist;
use obs::json;
use verilog::{Module, StmtId};

/// One operand's attribution inside a suspect statement.
#[derive(Debug, Clone, PartialEq)]
pub struct OperandAttribution {
    /// The operand (signal) name.
    pub name: String,
    /// Its failing-trace (`F_t`) attention weight.
    pub weight: f32,
    /// Its correct-trace (`C_t`) attention weight, when the statement was
    /// executed in correct traces at all.
    pub correct_weight: Option<f32>,
    /// 1-based rank of this operand within the statement, by decreasing
    /// failing-trace weight (ties break toward the earlier operand).
    pub rank: usize,
    /// Number of contributing use-def chains: the leaf-to-leaf AST paths
    /// the PathRNN embedded for this operand's context.
    pub paths: usize,
}

/// One suspect statement with its ranked operand attributions.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtAttribution {
    /// The statement id in the buggy design.
    pub stmt: StmtId,
    /// 1-based rank by decreasing suspiciousness (ties toward lower ids).
    pub rank: usize,
    /// The suspiciousness score `d(F_t(l), C_t(l))`.
    pub suspiciousness: f32,
    /// Why the statement entered the heatmap.
    pub reason: SuspicionReason,
    /// The statement source, rendered as `lhs = rhs`.
    pub source: String,
    /// Per-operand attributions, in operand (source) order.
    pub operands: Vec<OperandAttribution>,
}

/// The full attribution report for one localization run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// The buggy module's name.
    pub module: String,
    /// The target output localized against.
    pub target: String,
    /// Total co-simulated runs.
    pub total_runs: usize,
    /// Runs whose target output diverged from golden.
    pub failing_runs: usize,
    /// The heatmap admission threshold used.
    pub threshold: f32,
    /// Which engine simulated the buggy design.
    pub engine: sim::EngineKind,
    /// Content hash of the model weights that produced the attention
    /// (16 hex digits; see [`persist::content_hash_hex`]).
    pub weights_hash: String,
    /// The persist-format version of those weights.
    pub weights_format: &'static str,
    /// Suspect statements, most suspicious first.
    pub attributions: Vec<StmtAttribution>,
}

/// Stable machine-readable label for a [`SuspicionReason`].
pub fn reason_label(reason: SuspicionReason) -> &'static str {
    match reason {
        SuspicionReason::OnlyInFailing => "only_in_failing",
        SuspicionReason::DivergentAttention => "divergent_attention",
    }
}

/// Stable machine-readable label for an engine kind.
fn engine_label(engine: sim::EngineKind) -> &'static str {
    match engine {
        sim::EngineKind::Batch => "batch",
        sim::EngineKind::Compiled => "compiled",
        sim::EngineKind::Interpreted => "interpreted",
    }
}

/// 1-based ranks by decreasing weight, ties toward the earlier operand.
fn operand_ranks(weights: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    let mut ranks = vec![0usize; weights.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank + 1;
    }
    ranks
}

impl AttributionReport {
    /// Builds the attribution report for a completed localization run.
    ///
    /// `module` must be the buggy module the report was produced from
    /// (statement ids and operand order are resolved against it); `model`
    /// identifies the weights whose attention is being attributed.
    pub fn from_localize(
        model: &VeriBugModel,
        module: &Module,
        report: &LocalizeReport,
    ) -> AttributionReport {
        let features = StatementFeatures::extract_all(module);
        let mut attributions = Vec::with_capacity(report.heatmap.len());
        for (rank0, (stmt, sus)) in report.heatmap.ranked().into_iter().enumerate() {
            let entry = &report.heatmap.entries[&stmt];
            let correct = report.correct_map.per_stmt.get(&stmt);
            let f = features.get(&stmt);
            let ranks = operand_ranks(&entry.weights);
            let operands = entry
                .operands
                .iter()
                .enumerate()
                .map(|(i, name)| OperandAttribution {
                    name: name.clone(),
                    weight: entry.weights.get(i).copied().unwrap_or(0.0),
                    correct_weight: correct.and_then(|c| c.weights.get(i).copied()),
                    rank: ranks.get(i).copied().unwrap_or(i + 1),
                    paths: f
                        .and_then(|f| f.operands.get(i))
                        .map(|o| o.paths.len())
                        .unwrap_or(0),
                })
                .collect();
            attributions.push(StmtAttribution {
                stmt,
                rank: rank0 + 1,
                suspiciousness: sus,
                reason: entry.reason,
                source: module
                    .assignment(stmt)
                    .map(|a| format!("{} = {}", a.lhs.base, verilog::print_expr(&a.rhs)))
                    .unwrap_or_else(|| "<unknown>".to_owned()),
                operands,
            });
        }
        AttributionReport {
            module: report.module.clone(),
            target: report.target.clone(),
            total_runs: report.total_runs,
            failing_runs: report.failing_runs,
            threshold: report.threshold,
            engine: report.engine,
            weights_hash: persist::content_hash_hex(model),
            weights_format: persist::format_version(),
            attributions,
        }
    }

    /// The canonical JSON rendering, newline-terminated. Byte-identical
    /// for identical inputs at any thread count; served verbatim by
    /// `POST /v1/explain` and printed verbatim by
    /// `veribug explain --attention --json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"module\":");
        json::write_str(&mut out, &self.module);
        out.push_str(",\"target\":");
        json::write_str(&mut out, &self.target);
        let _ = write!(
            out,
            ",\"total_runs\":{},\"failing_runs\":{},\"threshold\":",
            self.total_runs, self.failing_runs
        );
        json::write_f64(&mut out, f64::from(self.threshold));
        out.push_str(",\"engine\":");
        json::write_str(&mut out, engine_label(self.engine));
        out.push_str(",\"weights_hash\":");
        json::write_str(&mut out, &self.weights_hash);
        out.push_str(",\"weights_format\":");
        json::write_str(&mut out, self.weights_format);
        out.push_str(",\"attributions\":[");
        for (i, a) in self.attributions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stmt\":");
            json::write_str(&mut out, &a.stmt.to_string());
            let _ = write!(out, ",\"rank\":{},\"suspiciousness\":", a.rank);
            json::write_f64(&mut out, f64::from(a.suspiciousness));
            out.push_str(",\"reason\":");
            json::write_str(&mut out, reason_label(a.reason));
            out.push_str(",\"source\":");
            json::write_str(&mut out, &a.source);
            out.push_str(",\"operands\":[");
            for (j, op) in a.operands.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                json::write_str(&mut out, &op.name);
                out.push_str(",\"weight\":");
                json::write_f64(&mut out, f64::from(op.weight));
                out.push_str(",\"correct_weight\":");
                match op.correct_weight {
                    Some(w) => json::write_f64(&mut out, f64::from(w)),
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"rank\":{},\"paths\":{}}}", op.rank, op.paths);
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// A plain-text heat-map rendering: one block per suspect statement
    /// with its `F_t`/`C_t` weights and operand ranks. Deterministic for
    /// identical inputs at any thread count.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "explain: {}/{} — {}/{} failing runs, threshold {:.2}, engine {}\n",
            self.module,
            self.target,
            self.failing_runs,
            self.total_runs,
            self.threshold,
            engine_label(self.engine),
        );
        let _ = writeln!(
            out,
            "weights: {} ({})",
            self.weights_hash, self.weights_format
        );
        if self.attributions.is_empty() {
            out.push_str("(no attributions: no failing run or nothing crossed the threshold)\n");
            return out;
        }
        for a in &self.attributions {
            let _ = writeln!(
                out,
                "#{} {} suspiciousness {:.3} [{}]",
                a.rank,
                a.stmt,
                a.suspiciousness,
                reason_label(a.reason)
            );
            let _ = writeln!(out, "   {}", a.source);
            let fmt_weights = |get: &dyn Fn(&OperandAttribution) -> Option<f32>| {
                a.operands
                    .iter()
                    .map(|op| match get(op) {
                        Some(w) => format!("{}[{w:.2}]", op.name),
                        None => format!("{}[-]", op.name),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let _ = writeln!(out, "   F_t: {}", fmt_weights(&|op| Some(op.weight)));
            let _ = writeln!(out, "   C_t: {}", fmt_weights(&|op| op.correct_weight));
            let ops = a
                .operands
                .iter()
                .map(|op| {
                    format!(
                        "{} (rank {}, {} path{})",
                        op.name,
                        op.rank,
                        op.paths,
                        if op.paths == 1 { "" } else { "s" }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "   operands: {ops}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::{self, LocalizeOptions};
    use crate::model::{ModelConfig, VeriBugModel};

    const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                          wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
    const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                         wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

    fn report() -> (VeriBugModel, Module, LocalizeReport) {
        let golden = verilog::parse(GOLDEN).unwrap().top().clone();
        let buggy = verilog::parse(BUGGY).unwrap().top().clone();
        let model = VeriBugModel::new(ModelConfig::default());
        let opts = LocalizeOptions {
            runs: 24,
            cycles: 8,
            // The untrained model's F_t/C_t gap is small; admit everything.
            threshold: 0.0,
            ..LocalizeOptions::default()
        };
        let r = localize::run(&model, &golden, &buggy, "y", &opts).unwrap();
        (model, buggy, r)
    }

    #[test]
    fn attribution_report_is_ranked_and_complete() {
        let (model, buggy, r) = report();
        assert!(r.has_failures(), "a|b vs a&b must diverge");
        let att = AttributionReport::from_localize(&model, &buggy, &r);
        assert_eq!(att.attributions.len(), r.heatmap.len());
        assert_eq!(att.weights_hash.len(), 16);
        for (i, a) in att.attributions.iter().enumerate() {
            assert_eq!(a.rank, i + 1);
            assert!(!a.operands.is_empty(), "suspects carry operands: {a:?}");
            // Operand ranks are a permutation of 1..=n.
            let mut ranks: Vec<usize> = a.operands.iter().map(|o| o.rank).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (1..=a.operands.len()).collect::<Vec<_>>());
            // Every operand has at least one contributing use-def chain.
            assert!(a.operands.iter().all(|o| o.paths > 0), "{a:?}");
        }
        // Ranking matches the report's suspects.
        for (a, s) in att.attributions.iter().zip(&r.suspects) {
            assert_eq!(a.stmt, s.stmt);
            assert_eq!(a.suspiciousness, s.suspiciousness);
            assert_eq!(a.source, s.source);
        }
    }

    #[test]
    fn json_rendering_parses_back_and_is_stable() {
        let (model, buggy, r) = report();
        let att = AttributionReport::from_localize(&model, &buggy, &r);
        let a = att.to_json();
        let b = AttributionReport::from_localize(&model, &buggy, &r).to_json();
        assert_eq!(a, b, "rendering is deterministic");
        assert!(a.ends_with('\n'));
        let doc = json::parse(&a).expect("valid json");
        assert_eq!(
            doc.get("module").and_then(|v| v.as_str()),
            Some(att.module.as_str())
        );
        assert_eq!(
            doc.get("weights_hash").and_then(|v| v.as_str()),
            Some(att.weights_hash.as_str())
        );
        let arr = doc
            .get("attributions")
            .and_then(|v| v.as_arr())
            .expect("attributions array");
        assert_eq!(arr.len(), att.attributions.len());
        if let Some(first) = arr.first() {
            assert_eq!(first.get("rank").and_then(|v| v.as_num()), Some(1.0));
            let ops = first
                .get("operands")
                .and_then(|v| v.as_arr())
                .expect("operands");
            for op in ops {
                assert!(op.get("weight").and_then(|v| v.as_num()).is_some());
                assert!(op.get("paths").and_then(|v| v.as_num()).is_some());
            }
        }
    }

    #[test]
    fn text_rendering_shows_both_maps() {
        let (model, buggy, r) = report();
        let att = AttributionReport::from_localize(&model, &buggy, &r);
        let text = att.to_text();
        assert!(text.contains("F_t:"), "{text}");
        assert!(text.contains("C_t:"), "{text}");
        assert!(text.contains(&att.weights_hash), "{text}");
        assert!(text.contains("suspiciousness"), "{text}");
    }
}
