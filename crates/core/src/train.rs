//! Dataset construction and training (paper Secs. IV-C, V).
//!
//! VeriBug trains on *free supervision*: the per-statement execution records
//! produced by simulating RVDG-generated synthetic designs. The loss is a
//! class-weighted cross-entropy (inverse class frequency) plus the
//! localization regularizer `(α/N) Σ 1/‖X*_i‖` that keeps the aggregation
//! and attention parameters training (paper "Training Loss").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

use crate::error::VeriBugError;
use crate::features::StatementFeatures;
use crate::model::{Sample, VeriBugModel};
use neuro::{GradBuffer, Graph};
use sim::{Simulator, TestbenchGen};
use verilog::Module;

/// One dataset entry: a statement (by index into the feature table) plus an
/// observed execution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetEntry {
    /// Index into [`Dataset::stmts`].
    pub stmt_idx: usize,
    /// Operand values and target bit.
    pub sample: Sample,
}

/// A supervised dataset of statement executions.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Dataset {
    /// Feature table (deduplicated across designs).
    pub stmts: Vec<StatementFeatures>,
    /// Execution samples referencing the feature table.
    pub entries: Vec<DatasetEntry>,
}

impl Dataset {
    /// Builds a dataset by simulating each design with seeded random
    /// stimuli and collecting every *distinct* `(statement, operand values)`
    /// execution observed.
    ///
    /// Designs are simulated and harvested in parallel; results are merged
    /// in design order, so the dataset is identical at any thread count (see
    /// [`par::max_threads`] for the thread knobs). Each design's stimuli
    /// depend only on `seed` and the design's position, never on scheduling.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/simulation failures, and reports a
    /// [`VeriBugError::BadDataset`] when nothing executable was observed.
    pub fn from_designs(
        modules: &[Module],
        seed: u64,
        cycles: usize,
        runs_per_design: usize,
    ) -> Result<Self, VeriBugError> {
        let _span = obs::span("train.dataset");
        let harvests = par::par_run(modules.len(), |di| {
            harvest_design(&modules[di], seed, di, cycles, runs_per_design)
        });
        let mut stmts: Vec<StatementFeatures> = Vec::new();
        let mut entries: Vec<DatasetEntry> = Vec::new();
        for harvest in harvests {
            let (design_stmts, design_entries) = harvest?;
            let base = stmts.len();
            stmts.extend(design_stmts);
            entries.extend(design_entries.into_iter().map(|mut e| {
                e.stmt_idx += base;
                e
            }));
        }
        if entries.is_empty() {
            return Err(VeriBugError::BadDataset {
                detail: "no statement executions observed".to_owned(),
            });
        }
        Ok(Dataset { stmts, entries })
    }

    /// Class weights `(w0, w1)` by inverse class frequency over the targets.
    ///
    /// # Errors
    ///
    /// Fails when only one class is present.
    pub fn class_weights(&self) -> Result<(f32, f32), VeriBugError> {
        let ones = self.entries.iter().filter(|e| e.sample.target).count();
        let zeros = self.entries.len() - ones;
        if ones == 0 || zeros == 0 {
            return Err(VeriBugError::BadDataset {
                detail: format!("single-class dataset ({zeros} zeros, {ones} ones)"),
            });
        }
        let n = self.entries.len() as f32;
        Ok((n / (2.0 * zeros as f32), n / (2.0 * ones as f32)))
    }

    /// Splits into `(train, holdout)` with the given holdout fraction,
    /// shuffling entries with `seed`. The feature table is shared (cloned).
    pub fn split(&self, holdout_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let cut = ((self.entries.len() as f64) * holdout_fraction).round() as usize;
        let (hold_idx, train_idx) = order.split_at(cut.min(order.len()));
        let pick = |idxs: &[usize]| Dataset {
            stmts: self.stmts.clone(),
            entries: idxs.iter().map(|&i| self.entries[i].clone()).collect(),
        };
        (pick(train_idx), pick(hold_idx))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Simulates one design and harvests its distinct statement executions.
///
/// Returns the design's feature table and entries with *design-local*
/// statement indices; [`Dataset::from_designs`] offsets them into the global
/// table. Deduplication is per design, which is equivalent to the global
/// dedup of a serial pass because `(stmt_idx, values)` keys never collide
/// across designs (each design owns a disjoint index range).
fn harvest_design(
    module: &Module,
    seed: u64,
    di: usize,
    cycles: usize,
    runs_per_design: usize,
) -> Result<(Vec<StatementFeatures>, Vec<DatasetEntry>), VeriBugError> {
    let features = StatementFeatures::extract_all(module);
    let mut sim = Simulator::new(module)?;
    // Map stmt id -> design-local feature-table index.
    let mut local: std::collections::BTreeMap<verilog::StmtId, usize> =
        std::collections::BTreeMap::new();
    for id in features.keys() {
        local.insert(*id, local.len());
    }
    let stmts: Vec<StatementFeatures> = features.into_values().collect();
    let positions: Vec<Vec<Option<usize>>> = stmts
        .iter()
        .map(|f| operand_positions(f, sim.netlist()))
        .collect();
    let mut entries: Vec<DatasetEntry> = Vec::new();
    let mut seen: BTreeSet<(usize, Vec<bool>)> = BTreeSet::new();
    let tb = TestbenchGen::new(seed.wrapping_add(di as u64 * 7919));
    let stimuli = tb.generate_many(sim.netlist(), cycles, runs_per_design);
    // All runs share a cycle count, so the whole harvest packs into
    // 64-wide batches; dedup below stays in stimulus order either way.
    for trace in sim.run_batch(&stimuli)? {
        for cyc in &trace.cycles {
            for exec in &cyc.execs {
                let Some(&idx) = local.get(&exec.stmt) else {
                    continue;
                };
                let Some(values) = operand_values(&positions[idx], exec) else {
                    continue;
                };
                if !seen.insert((idx, values.clone())) {
                    continue;
                }
                entries.push(DatasetEntry {
                    stmt_idx: idx,
                    sample: Sample {
                        values,
                        target: exec.result.is_truthy(),
                    },
                });
            }
        }
    }
    Ok((stmts, entries))
}

/// Maps a statement's feature operands to their positions in the
/// simulator's record read order (execution records store operand values
/// positionally, without names). `positions[j]` is the record position of
/// feature operand `j`, or `None` when the elaborated design does not
/// record that operand. Compute once per statement, not per record.
pub fn operand_positions(f: &StatementFeatures, netlist: &sim::Netlist) -> Vec<Option<usize>> {
    let names = netlist.assign_info(f.stmt).map(|i| i.names.as_ref());
    f.operands
        .iter()
        .map(|o| names.and_then(|ns| ns.iter().position(|n| n.as_ref() == o.name)))
        .collect()
}

/// Reads the recorded operand values for a statement's feature operands,
/// using a position map from [`operand_positions`]. Returns `None` when a
/// feature operand was not recorded (should not happen for executions
/// produced by `veribug-sim`).
pub fn operand_values(positions: &[Option<usize>], exec: &sim::StmtExec) -> Option<Vec<bool>> {
    positions
        .iter()
        .map(|p| p.and_then(|i| exec.operand(i)).map(|v| v.is_truthy()))
        .collect()
}

/// Training hyper-parameters. Defaults follow the paper: Adam with
/// `lr = 1e-3`, `wd = 1e-5`, regularization weight `α = 0.10`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// The regularizer weight α.
    pub alpha: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Adam weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            alpha: 0.10,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
            seed: 7,
        }
    }
}

impl TrainConfig {
    /// The configuration the experiment harness uses: enough epochs for the
    /// predictor to reach its Table II operating point (the default is kept
    /// small so unit tests stay fast).
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        }
    }
}

/// One epoch's telemetry row (persisted to `train_log.jsonl` by
/// [`append_train_log`]).
///
/// Everything except `wall_s` is bit-identical at any thread count —
/// gradient norms and attention entropies come from the same fixed-order
/// shard merges as the loss. `wall_s` is observation only and must never
/// enter a reproducibility comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean batch loss.
    pub loss: f32,
    /// Mean merged-gradient L2 norm over the epoch's batches.
    pub grad_norm: f64,
    /// Mean attention entropy (bits) over the epoch's forward passes.
    pub attention_entropy: f64,
    /// Wall-clock seconds the epoch took (not deterministic).
    pub wall_s: f64,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Mean batch loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final ε (skip-weight) value.
    pub final_epsilon: f32,
    /// Full per-epoch telemetry, aligned with `epoch_losses`.
    pub epochs: Vec<EpochStats>,
}

/// Trains a model in place.
///
/// Each minibatch is data-parallel over fixed-size shards (see
/// [`train_batch`]'s internals): shard gradients are accumulated into
/// per-worker buffers and merged in shard order before the optimizer step.
/// Because no reduction order ever depends on the worker count, the final
/// parameters — and every reported epoch loss — are bit-identical whether
/// training runs on one thread or many.
///
/// # Errors
///
/// Fails on unusable datasets (empty or single-class).
pub fn train(
    model: &mut VeriBugModel,
    dataset: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, VeriBugError> {
    let _span = obs::span("train");
    static SAMPLES: obs::LazyGauge = obs::LazyGauge::new("train.samples");
    SAMPLES.set(dataset.len() as f64);
    let (w0, w1) = dataset.class_weights()?;
    let mut adam = neuro::Adam::new(cfg.learning_rate).with_weight_decay(cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = obs::span("train.epoch");
        let epoch_start = std::time::Instant::now();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut total = 0.0f32;
        let mut batches = 0usize;
        let mut norm_sum = 0.0f64;
        let mut ent_sum = 0.0f64;
        let mut ent_count = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let stats = train_batch(model, dataset, chunk, w0, w1, cfg.alpha, &mut adam);
            total += stats.loss;
            norm_sum += stats.grad_norm;
            ent_sum += stats.entropy_sum;
            ent_count += stats.entropy_count;
            batches += 1;
        }
        let epoch_loss = total / batches.max(1) as f32;
        obs::instant("train.epoch_loss", f64::from(epoch_loss));
        epoch_losses.push(epoch_loss);
        epochs.push(EpochStats {
            epoch,
            loss: epoch_loss,
            grad_norm: norm_sum / batches.max(1) as f64,
            attention_entropy: ent_sum / ent_count.max(1) as f64,
            wall_s: epoch_start.elapsed().as_secs_f64(),
        });
    }
    static FINAL_LOSS: obs::LazyGauge = obs::LazyGauge::new("train.final_loss");
    if let Some(&last) = epoch_losses.last() {
        FINAL_LOSS.set(f64::from(last));
    }
    Ok(TrainReport {
        epoch_losses,
        final_epsilon: model.epsilon(),
        epochs,
    })
}

/// Samples per data-parallel shard of a minibatch. A fixed constant: shard
/// boundaries (and therefore every f32 reduction order) depend only on the
/// batch itself, never on how many workers happen to run, so training is
/// bit-reproducible at any thread count.
const SHARD: usize = 8;

/// What one [`train_batch`] call observed: the loss plus the telemetry
/// inputs for [`EpochStats`]. Entropy is carried as `(sum, count)` so the
/// epoch mean is a single fixed-order division.
struct BatchStats {
    loss: f32,
    grad_norm: f64,
    entropy_sum: f64,
    entropy_count: usize,
}

/// One optimizer step on a minibatch; returns the batch loss and stats.
///
/// The batch is split into fixed-size shards. Each shard runs its forward
/// and backward pass on its own tape into a private [`GradBuffer`]; buffers,
/// shard losses, and shard attention-entropy sums are then merged in shard
/// order before a single Adam step, so the result is independent of the
/// worker count.
fn train_batch(
    model: &mut VeriBugModel,
    dataset: &Dataset,
    batch: &[usize],
    w0: f32,
    w1: f32,
    alpha: f32,
    adam: &mut neuro::Adam,
) -> BatchStats {
    // The normalizers depend on the whole batch, so compute them before
    // sharding: each shard contributes `Σ w_i·ce_i / weight_sum` and
    // `(α/N) Σ reg_i` directly.
    let weight_sum: f32 = batch
        .iter()
        .map(|&i| {
            if dataset.entries[i].sample.target {
                w1
            } else {
                w0
            }
        })
        .sum();
    let shard_model: &VeriBugModel = model;
    let shards = par::par_chunk_map(batch, SHARD, |_, shard| {
        let mut g = Graph::new();
        let mut ce_terms = Vec::with_capacity(shard.len());
        let mut reg_terms = Vec::with_capacity(shard.len());
        let mut ent_sum = 0.0f64;
        for &i in shard {
            let entry = &dataset.entries[i];
            let f = &dataset.stmts[entry.stmt_idx];
            let fwd = shard_model.forward(&mut g, f, &entry.sample);
            ent_sum += crate::explain::attention_entropy(&fwd.attention);
            let target = usize::from(entry.sample.target);
            let w = if entry.sample.target { w1 } else { w0 };
            let ce = g.cross_entropy_logits(fwd.logits, target);
            ce_terms.push(g.scale(ce, w));
            reg_terms.push(g.recip_frob_norm(fwd.x_star));
        }
        let ce_sum = sum_nodes(&mut g, &ce_terms);
        let ce_part = g.scale(ce_sum, 1.0 / weight_sum);
        let reg_sum = sum_nodes(&mut g, &reg_terms);
        let reg_part = g.scale(reg_sum, alpha / batch.len() as f32);
        let loss = g.add(ce_part, reg_part);
        let loss_value = g.value(loss).item();
        let mut grads = GradBuffer::zeros_like(shard_model.params());
        g.backward_to(loss, &mut grads);
        (loss_value, grads, ent_sum, shard.len())
    });
    let mut total = GradBuffer::zeros_like(model.params());
    let mut loss_value = 0.0f32;
    let mut entropy_sum = 0.0f64;
    let mut entropy_count = 0usize;
    for (shard_loss, grads, ent, n) in &shards {
        loss_value += shard_loss;
        total.merge(grads);
        entropy_sum += ent;
        entropy_count += n;
    }
    // Observation only — reads the merged buffer, never changes the update.
    // The norm feeds `train_log.jsonl`, so compute it unconditionally; the
    // histogram still only records when obs output is on.
    static GRAD_NORM: obs::LazyHistogram = obs::LazyHistogram::new_micros("train.grad_norm");
    static ADAM_US: obs::LazyHistogram = obs::LazyHistogram::new("train.adam_step_us");
    let mut sq = 0.0f64;
    for id in model.params().ids() {
        for &g in total.grad(id).data() {
            sq += f64::from(g) * f64::from(g);
        }
    }
    let grad_norm = sq.sqrt();
    GRAD_NORM.record_f64(grad_norm);
    total.apply_to(model.params_mut());
    let step_start = obs::enabled().then(std::time::Instant::now);
    adam.step(model.params_mut(), 1.0);
    if let Some(t0) = step_start {
        ADAM_US.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    BatchStats {
        loss: loss_value,
        grad_norm,
        entropy_sum,
        entropy_count,
    }
}

fn sum_nodes(g: &mut Graph, nodes: &[neuro::NodeId]) -> neuro::NodeId {
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = g.add(acc, n);
    }
    acc
}

/// Evaluation metrics for the execution-semantics predictor (Table II
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalMetrics {
    /// Overall accuracy.
    pub accuracy: f32,
    /// Precision for target bit 0.
    pub precision0: f32,
    /// Recall for target bit 0.
    pub recall0: f32,
    /// Precision for target bit 1.
    pub precision1: f32,
    /// Recall for target bit 1.
    pub recall1: f32,
    /// Number of evaluated samples.
    pub count: usize,
}

/// Evaluates a model on a dataset.
///
/// Entries are scored in parallel chunks, each reusing one cleared tape
/// ([`VeriBugModel::predict_with`]); the per-chunk confusion counts are
/// integer sums, so the metrics are identical at any thread count.
pub fn evaluate(model: &VeriBugModel, dataset: &Dataset) -> EvalMetrics {
    // Confusion counts: [actual][predicted].
    let chunks = par::par_chunk_map(&dataset.entries, 64, |_, chunk| {
        let mut m = [[0usize; 2]; 2];
        let mut g = Graph::new();
        for entry in chunk {
            let f = &dataset.stmts[entry.stmt_idx];
            let (pred, _) = model.predict_with(&mut g, f, &entry.sample.values);
            m[usize::from(entry.sample.target)][usize::from(pred)] += 1;
        }
        m
    });
    let mut m = [[0usize; 2]; 2];
    for c in &chunks {
        for (row, crow) in m.iter_mut().zip(c) {
            for (cell, v) in row.iter_mut().zip(crow) {
                *cell += v;
            }
        }
    }
    let total = dataset.len().max(1);
    let div = |a: usize, b: usize| {
        if b == 0 {
            0.0
        } else {
            a as f32 / b as f32
        }
    };
    EvalMetrics {
        accuracy: (m[0][0] + m[1][1]) as f32 / total as f32,
        precision0: div(m[0][0], m[0][0] + m[1][0]),
        recall0: div(m[0][0], m[0][0] + m[0][1]),
        precision1: div(m[1][1], m[1][1] + m[0][1]),
        recall1: div(m[1][1], m[1][1] + m[1][0]),
        count: dataset.len(),
    }
}

/// Appends one JSON line per epoch of `report` to the training log at
/// `path` (created if absent, never truncated), in the obs JSON-lines
/// event idiom: each line is a self-contained object with a `"type"` tag.
///
/// ```json
/// {"type":"train_epoch","epoch":0,"loss":0.61,"grad_norm":2.3,
///  "attention_entropy":1.9,"wall_s":0.41,"threads":8,
///  "weights_hash":"8f3a…","alpha":0.1,"seed":7}
/// ```
///
/// `weights_hash` is the content hash of the *final* trained weights
/// ([`crate::persist::content_hash_hex`]), so an accuracy regression seen
/// against a saved model can be traced back to the run — and the epochs —
/// that produced it.
///
/// # Errors
///
/// Propagates I/O failures opening or appending to `path`.
pub fn append_train_log(
    path: &std::path::Path,
    report: &TrainReport,
    cfg: &TrainConfig,
    model: &VeriBugModel,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    use std::io::Write as _;
    let hash = crate::persist::content_hash_hex(model);
    let threads = par::max_threads();
    let mut out = String::with_capacity(report.epochs.len() * 160);
    for e in &report.epochs {
        let _ = write!(out, "{{\"type\":\"train_epoch\",\"epoch\":{},", e.epoch);
        out.push_str("\"loss\":");
        obs::json::write_f64(&mut out, f64::from(e.loss));
        out.push_str(",\"grad_norm\":");
        obs::json::write_f64(&mut out, e.grad_norm);
        out.push_str(",\"attention_entropy\":");
        obs::json::write_f64(&mut out, e.attention_entropy);
        out.push_str(",\"wall_s\":");
        obs::json::write_f64(&mut out, e.wall_s);
        let _ = write!(out, ",\"threads\":{threads},\"weights_hash\":");
        obs::json::write_str(&mut out, &hash);
        out.push_str(",\"alpha\":");
        obs::json::write_f64(&mut out, f64::from(cfg.alpha));
        let _ = writeln!(out, ",\"seed\":{}}}", cfg.seed);
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use rvdg::{Generator, RvdgConfig};

    fn small_corpus(n: usize) -> Vec<Module> {
        Generator::new(RvdgConfig::default(), 5)
            .generate_corpus(n)
            .unwrap()
            .into_iter()
            .map(|d| d.module)
            .collect()
    }

    #[test]
    fn dataset_builds_and_is_two_class() {
        let ds = Dataset::from_designs(&small_corpus(3), 1, 24, 2).unwrap();
        assert!(ds.len() > 20, "dataset too small: {}", ds.len());
        let (w0, w1) = ds.class_weights().unwrap();
        assert!(w0 > 0.0 && w1 > 0.0);
    }

    #[test]
    fn dataset_entries_are_unique() {
        let ds = Dataset::from_designs(&small_corpus(2), 2, 24, 2).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for e in &ds.entries {
            assert!(
                seen.insert((e.stmt_idx, e.sample.values.clone())),
                "duplicate entry"
            );
        }
    }

    #[test]
    fn split_partitions_entries() {
        let ds = Dataset::from_designs(&small_corpus(2), 3, 24, 2).unwrap();
        let (train, hold) = ds.split(0.25, 9);
        assert_eq!(train.len() + hold.len(), ds.len());
        assert!(!hold.is_empty());
        assert!(train.len() > hold.len());
    }

    #[test]
    fn training_reduces_loss_and_learns_something() {
        let ds = Dataset::from_designs(&small_corpus(4), 4, 32, 2).unwrap();
        let (train_ds, hold) = ds.split(0.2, 1);
        let mut model = VeriBugModel::new(ModelConfig::default());
        let before = evaluate(&model, &hold);
        let report = train(
            &mut model,
            &train_ds,
            &TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let after = evaluate(&model, &hold);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        assert!(
            after.accuracy > before.accuracy.max(0.6),
            "accuracy before {} after {}",
            before.accuracy,
            after.accuracy
        );
    }

    #[test]
    fn dataset_is_thread_count_invariant() {
        let corpus = small_corpus(3);
        let single = par::with_threads(1, || Dataset::from_designs(&corpus, 1, 24, 2).unwrap());
        for threads in [2usize, 8] {
            let multi = par::with_threads(threads, || {
                Dataset::from_designs(&corpus, 1, 24, 2).unwrap()
            });
            assert_eq!(single, multi, "{threads} threads");
        }
    }

    #[test]
    fn training_is_thread_count_invariant() {
        let ds = Dataset::from_designs(&small_corpus(2), 5, 24, 2).unwrap();
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = VeriBugModel::new(ModelConfig::default());
                let report = train(&mut model, &ds, &cfg).unwrap();
                (report, evaluate(&model, &ds))
            })
        };
        let (report1, eval1) = run(1);
        for threads in [2usize, 8] {
            let (report_n, eval_n) = run(threads);
            // Exact f32 equality: sharded reductions are merged in a fixed
            // order, so thread count must not perturb a single bit.
            assert_eq!(
                report1.epoch_losses, report_n.epoch_losses,
                "{threads} threads"
            );
            assert_eq!(
                report1.final_epsilon, report_n.final_epsilon,
                "{threads} threads"
            );
            assert_eq!(eval1, eval_n, "{threads} threads");
        }
    }

    #[test]
    fn epoch_stats_are_populated_and_deterministic() {
        let ds = Dataset::from_designs(&small_corpus(2), 6, 16, 1).unwrap();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let strip = |r: &TrainReport| -> Vec<(u32, u64, u64)> {
            r.epochs
                .iter()
                .map(|e| {
                    (
                        e.loss.to_bits(),
                        e.grad_norm.to_bits(),
                        e.attention_entropy.to_bits(),
                    )
                })
                .collect()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = VeriBugModel::new(ModelConfig::default());
                train(&mut model, &ds, &cfg).unwrap()
            })
        };
        let r1 = run(1);
        assert_eq!(r1.epochs.len(), cfg.epochs);
        for (i, e) in r1.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.loss, r1.epoch_losses[i]);
            assert!(e.grad_norm > 0.0, "{e:?}");
            assert!(e.attention_entropy >= 0.0, "{e:?}");
        }
        for threads in [2usize, 8] {
            assert_eq!(strip(&r1), strip(&run(threads)), "{threads} threads");
        }
    }

    #[test]
    fn train_log_is_append_only_jsonl() {
        let ds = Dataset::from_designs(&small_corpus(2), 6, 16, 1).unwrap();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut model = VeriBugModel::new(ModelConfig::default());
        let report = train(&mut model, &ds, &cfg).unwrap();
        let path =
            std::env::temp_dir().join(format!("veribug_train_log_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_train_log(&path, &report, &cfg, &model).unwrap();
        append_train_log(&path, &report, &cfg, &model).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "two appends of two epochs each");
        let hash = crate::persist::content_hash_hex(&model);
        for line in lines {
            let v = obs::json::parse(line).expect("line parses");
            assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("train_epoch"));
            assert_eq!(
                v.get("weights_hash").and_then(|h| h.as_str()),
                Some(hash.as_str())
            );
            for field in [
                "epoch",
                "loss",
                "grad_norm",
                "attention_entropy",
                "wall_s",
                "threads",
                "alpha",
                "seed",
            ] {
                assert!(v.get(field).and_then(|x| x.as_num()).is_some(), "{field}");
            }
        }
    }

    #[test]
    fn single_class_dataset_is_rejected() {
        let ds = Dataset {
            stmts: vec![],
            entries: vec![DatasetEntry {
                stmt_idx: 0,
                sample: Sample {
                    values: vec![true],
                    target: true,
                },
            }],
        };
        assert!(ds.class_weights().is_err());
    }
}
