//! Text/ANSI rendering of heatmaps (paper Fig. 4).
//!
//! The paper discretizes importance scores in `[0, 1]` into bins and colors
//! operands with increasing intensity — reds for the failing-trace map
//! `H_t`/`F_t`, blues for the correct-trace map `C_t`. This module renders
//! the same view in a terminal: each statement of the slice is printed with
//! per-operand scores, optionally with ANSI background colors.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::explain::{AttentionMap, Heatmap};
use verilog::{Module, StmtId};

/// Which palette to color operands with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Palette {
    /// Reds — for `H_t` / `F_t` (failing) maps.
    Red,
    /// Blues — for `C_t` (correct) maps.
    Blue,
}

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Emit ANSI 256-color escapes.
    pub ansi: bool,
    /// Palette for the importance colors.
    pub palette: Palette,
    /// Number of intensity bins over `[0, 1]`.
    pub bins: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            ansi: false,
            palette: Palette::Red,
            bins: 5,
        }
    }
}

/// Discretizes a score in `[0, 1]` into `0..bins`.
pub fn bin_of(score: f32, bins: usize) -> usize {
    let clamped = score.clamp(0.0, 1.0);
    ((clamped * bins as f32) as usize).min(bins - 1)
}

fn colorize(text: &str, score: f32, opts: &RenderOptions) -> String {
    if !opts.ansi {
        return format!("{text}[{score:.2}]");
    }
    let bin = bin_of(score, opts.bins);
    // ANSI-256 color ramps: light→saturated reds and blues.
    let reds = [252u8, 224, 217, 210, 196];
    let blues = [252u8, 195, 153, 111, 33];
    let ramp = match opts.palette {
        Palette::Red => reds,
        Palette::Blue => blues,
    };
    let idx = (bin * (ramp.len() - 1)) / (opts.bins - 1).max(1);
    format!("\x1b[48;5;{}m{text}\x1b[0m", ramp[idx])
}

/// Renders one statement with per-operand importance scores.
fn render_stmt(
    module: &Module,
    stmt: StmtId,
    operands: &[String],
    weights: &[f32],
    opts: &RenderOptions,
) -> String {
    let Some(a) = module.assignment(stmt) else {
        return format!("{stmt}: <unknown statement>");
    };
    let mut text = verilog::print_expr(&a.rhs);
    // Replace each operand occurrence with its colorized form. Longest
    // names first so `req10` is not clobbered by `req1`.
    let mut order: Vec<usize> = (0..operands.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(operands[i].len()));
    for i in order {
        let name = &operands[i];
        let score = weights.get(i).copied().unwrap_or(0.0);
        text = replace_word(&text, name, &colorize(name, score, opts));
    }
    let op = match a.kind {
        verilog::AssignKind::Continuous => "assign ",
        verilog::AssignKind::Blocking => "",
        verilog::AssignKind::NonBlocking => "",
    };
    let eq = if a.kind == verilog::AssignKind::NonBlocking {
        "<="
    } else {
        "="
    };
    format!("{op}{} {eq} {text};", a.lhs.base)
}

/// Whole-word replacement (identifier boundaries).
fn replace_word(text: &str, word: &str, with: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    while i < text.len() {
        if text[i..].starts_with(word) {
            let before_ok = i == 0 || !is_ident(bytes[i - 1]);
            let end = i + word.len();
            let after_ok = end >= text.len() || !is_ident(bytes[end]);
            if before_ok && after_ok {
                out.push_str(with);
                i = end;
                continue;
            }
        }
        let ch = text[i..].chars().next().expect("in bounds");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Renders a heatmap `H_t` over the module's source (red palette).
pub fn render_heatmap(module: &Module, heatmap: &Heatmap, opts: &RenderOptions) -> String {
    let mut out = String::new();
    for (stmt, entry) in &heatmap.entries {
        let _ = writeln!(
            out,
            "{}  (suspiciousness {:.3}, {:?})",
            render_stmt(module, *stmt, &entry.operands, &entry.weights, opts),
            entry.suspiciousness,
            entry.reason,
        );
    }
    if heatmap.is_empty() {
        out.push_str("(empty heatmap: nothing crossed the threshold)\n");
    }
    out
}

/// Renders an aggregated attention map (`F_t` or `C_t`).
pub fn render_attention_map(module: &Module, map: &AttentionMap, opts: &RenderOptions) -> String {
    let mut out = String::new();
    for (stmt, att) in &map.per_stmt {
        let _ = writeln!(
            out,
            "{}  ({} executions)",
            render_stmt(module, *stmt, &att.operands, &att.weights, opts),
            att.count,
        );
    }
    out
}

/// Renders a Fig. 4-style side-by-side comparison: the correct-trace scores
/// (blue) against the heatmap scores (red) for the statements in `H_t`,
/// with the suspiciousness column.
pub fn render_comparison(
    module: &Module,
    heatmap: &Heatmap,
    correct: &AttentionMap,
    ansi: bool,
) -> String {
    let red = RenderOptions {
        ansi,
        palette: Palette::Red,
        bins: 5,
    };
    let blue = RenderOptions {
        ansi,
        palette: Palette::Blue,
        bins: 5,
    };
    let empty: BTreeMap<StmtId, ()> = BTreeMap::new();
    let _ = &empty;
    let mut out = String::new();
    for (stmt, entry) in &heatmap.entries {
        let left = match correct.per_stmt.get(stmt) {
            Some(c) => render_stmt(module, *stmt, &c.operands, &c.weights, &blue),
            None => "(not executed in correct traces)".to_owned(),
        };
        let right = render_stmt(module, *stmt, &entry.operands, &entry.weights, &red);
        let _ = writeln!(out, "C_t: {left}");
        let _ = writeln!(out, "H_t: {right}");
        let _ = writeln!(out, "     suspiciousness = {:.3}\n", entry.suspiciousness);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::{HeatmapEntry, SuspicionReason};

    fn module() -> Module {
        verilog::parse("module m(input a, input ab, output y);\nassign y = a & ~ab;\nendmodule")
            .unwrap()
            .top()
            .clone()
    }

    #[test]
    fn bins_cover_range() {
        assert_eq!(bin_of(0.0, 5), 0);
        assert_eq!(bin_of(0.19, 5), 0);
        assert_eq!(bin_of(0.21, 5), 1);
        assert_eq!(bin_of(1.0, 5), 4);
        assert_eq!(bin_of(2.0, 5), 4); // clamped
    }

    #[test]
    fn replace_word_respects_boundaries() {
        assert_eq!(replace_word("a & ab", "a", "X"), "X & ab");
        assert_eq!(replace_word("ab & a", "ab", "Y"), "Y & a");
        assert_eq!(replace_word("aa", "a", "X"), "aa");
    }

    #[test]
    fn plain_rendering_shows_scores() {
        let m = module();
        let mut h = Heatmap {
            entries: BTreeMap::new(),
            threshold: 0.1,
        };
        h.entries.insert(
            StmtId(0),
            HeatmapEntry {
                operands: vec!["a".into(), "ab".into()],
                weights: vec![0.8, 0.2],
                suspiciousness: 0.42,
                reason: SuspicionReason::DivergentAttention,
            },
        );
        let text = render_heatmap(&m, &h, &RenderOptions::default());
        assert!(text.contains("a[0.80]"), "{text}");
        assert!(text.contains("ab[0.20]"), "{text}");
        assert!(text.contains("0.420"), "{text}");
    }

    #[test]
    fn ansi_rendering_emits_escapes() {
        let m = module();
        let mut h = Heatmap {
            entries: BTreeMap::new(),
            threshold: 0.1,
        };
        h.entries.insert(
            StmtId(0),
            HeatmapEntry {
                operands: vec!["a".into(), "ab".into()],
                weights: vec![0.9, 0.1],
                suspiciousness: 1.0,
                reason: SuspicionReason::OnlyInFailing,
            },
        );
        let opts = RenderOptions {
            ansi: true,
            ..RenderOptions::default()
        };
        let text = render_heatmap(&m, &h, &opts);
        assert!(text.contains("\x1b[48;5;"), "{text}");
    }

    #[test]
    fn empty_heatmap_renders_notice() {
        let m = module();
        let h = Heatmap::default();
        let text = render_heatmap(&m, &h, &RenderOptions::default());
        assert!(text.contains("empty heatmap"));
    }
}
