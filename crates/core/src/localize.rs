//! The reusable bug-localization entry point.
//!
//! Everything the `veribug localize` CLI command does — stimulus
//! generation, golden/buggy co-simulation, grouped heatmap explanation —
//! packaged as a library call so the CLI and the HTTP serving layer run
//! the *same* pipeline and produce byte-identical suspect rankings.
//!
//! Two entry points:
//!
//! - [`run`] elaborates both designs itself (the CLI path);
//! - [`run_with_sims`] accepts pre-built simulators plus a
//!   [`sim::CancelToken`], so a server can reuse cached compiled designs
//!   (see `veribug-serve`) and enforce per-request deadlines.
//!
//! Internally both entry points use the **two-pass trace-elision flow**
//! (see DESIGN.md §2c): a values-only verdict pass labels every run, then
//! full execution records are produced only for the buggy design and only
//! when at least one run failed. The golden design is never simulated
//! with full traces. The report is bit-identical to a single-pass flow —
//! the differential suite in `crates/bench/tests/differential.rs` proves
//! it.

use crate::coverage::{grouped_heatmap, DEFAULT_RUN_GROUPS};
use crate::explain::{AttentionMap, Heatmap, LabelledTrace};
use crate::model::VeriBugModel;
use crate::{Explainer, VeriBugError, DEFAULT_THRESHOLD};
use mutate::{golden_verdicts, run_lane_groups, screen_with};
use sim::{CancelToken, EngineKind, Simulator, TestbenchGen};
use verilog::Module;

/// Tunable knobs of one localization request. [`Default`] matches the CLI
/// defaults, so two callers with default options are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizeOptions {
    /// Constrained-random stimuli to co-simulate.
    pub runs: usize,
    /// Cycles per stimulus.
    pub cycles: usize,
    /// Attention threshold for heatmap admission.
    pub threshold: f32,
    /// Independent run groups max-pooled by [`grouped_heatmap`].
    pub run_groups: usize,
    /// Seed of the stimulus generator.
    pub stim_seed: u64,
    /// Input hold probability of the stimulus generator.
    pub hold_probability: f64,
}

impl Default for LocalizeOptions {
    fn default() -> Self {
        LocalizeOptions {
            runs: 160,
            cycles: 16,
            threshold: DEFAULT_THRESHOLD,
            run_groups: DEFAULT_RUN_GROUPS,
            stim_seed: 0xD0_17,
            hold_probability: 0.8,
        }
    }
}

/// One ranked suspect statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Suspect {
    /// The statement id in the buggy design.
    pub stmt: verilog::StmtId,
    /// Its suspiciousness score (higher = more suspicious).
    pub suspiciousness: f32,
    /// The statement source, rendered as `lhs = rhs`.
    pub source: String,
}

/// The result of one localization run.
#[derive(Debug, Clone)]
pub struct LocalizeReport {
    /// The buggy module's name.
    pub module: String,
    /// The target output localized against.
    pub target: String,
    /// Total co-simulated runs.
    pub total_runs: usize,
    /// Runs whose target output diverged from golden.
    pub failing_runs: usize,
    /// The threshold used.
    pub threshold: f32,
    /// Which engine simulated the buggy design.
    pub engine: EngineKind,
    /// Suspects, most suspicious first (ties break toward lower ids).
    /// Empty when no run failed or nothing crossed the threshold.
    pub suspects: Vec<Suspect>,
    /// The full grouped heatmap (drives the comparison rendering).
    pub heatmap: Heatmap,
    /// The correct-trace attention map (for comparison rendering).
    pub correct_map: AttentionMap,
}

impl LocalizeReport {
    /// True when at least one run exposed a failure at the target.
    pub fn has_failures(&self) -> bool {
        self.failing_runs > 0
    }
}

/// Localizes a bug by comparing a buggy design to its golden reference.
///
/// Elaborates both designs, co-simulates [`LocalizeOptions::runs`] seeded
/// stimuli, labels each run at `target`, and explains failing runs with
/// the trained model. See [`run_with_sims`] for the cache/deadline-aware
/// variant.
///
/// # Errors
///
/// [`VeriBugError::UnknownTarget`] when `target` is not a signal of the
/// golden design; [`VeriBugError::Sim`] for elaboration or simulation
/// failures.
pub fn run(
    model: &VeriBugModel,
    golden: &Module,
    buggy: &Module,
    target: &str,
    opts: &LocalizeOptions,
) -> Result<LocalizeReport, VeriBugError> {
    let (mut golden_sim, mut buggy_sim) = {
        let _span = obs::span("elaborate");
        (Simulator::new(golden)?, Simulator::new(buggy)?)
    };
    run_with_sims(
        model,
        &mut golden_sim,
        &mut buggy_sim,
        target,
        opts,
        &CancelToken::inert(),
    )
}

/// [`run`] with caller-supplied simulators and a cancellation token.
///
/// The simulators may come from a compiled-design cache (see
/// [`sim::Simulator::fork`]); `cancel` is installed on both for the
/// duration of the call (and cleared afterwards), so a fired deadline
/// stops the cycle loops at the next cycle boundary.
///
/// # Errors
///
/// As [`run`], plus [`VeriBugError::Sim`] wrapping
/// [`sim::SimError::Cancelled`] when `cancel` fires mid-run.
pub fn run_with_sims(
    model: &VeriBugModel,
    golden_sim: &mut Simulator,
    buggy_sim: &mut Simulator,
    target: &str,
    opts: &LocalizeOptions,
    cancel: &CancelToken,
) -> Result<LocalizeReport, VeriBugError> {
    golden_sim.set_cancel(cancel.clone());
    buggy_sim.set_cancel(cancel.clone());
    let result = localize_inner(model, golden_sim, buggy_sim, target, opts, cancel);
    golden_sim.set_cancel(CancelToken::inert());
    buggy_sim.set_cancel(CancelToken::inert());
    result
}

fn localize_inner(
    model: &VeriBugModel,
    golden_sim: &mut Simulator,
    buggy_sim: &mut Simulator,
    target: &str,
    opts: &LocalizeOptions,
    cancel: &CancelToken,
) -> Result<LocalizeReport, VeriBugError> {
    let target_id =
        golden_sim
            .netlist()
            .signal_id(target)
            .ok_or_else(|| VeriBugError::UnknownTarget {
                target: target.to_owned(),
            })?;
    let stimuli = TestbenchGen::new(opts.stim_seed)
        .with_hold_probability(opts.hold_probability)
        .generate_many(golden_sim.netlist(), opts.cycles, opts.runs);
    // Pass 1 — verdict screening: both designs run in
    // [`sim::TraceMode::Verdict`] with only `target` observed, so the
    // labelling step is pure lane-parallel compute plus an O(1)-per-cycle
    // compare. The golden design is *never* simulated with full traces:
    // the explainer below only ever reads buggy-side records.
    let golden_vs = {
        let _span = obs::span("simulate");
        golden_verdicts(golden_sim, &stimuli, target_id)?
    };
    let verdicts = {
        let _span = obs::span("campaign");
        screen_with(buggy_sim, &golden_vs, target_id, &stimuli)?
    };
    let failing = verdicts.iter().filter(|v| v.diverged()).count();
    let mut report = LocalizeReport {
        module: buggy_sim.netlist().module.name.clone(),
        target: target.to_owned(),
        total_runs: verdicts.len(),
        failing_runs: failing,
        threshold: opts.threshold,
        engine: buggy_sim.batch_engine_kind(),
        suspects: Vec::new(),
        heatmap: Heatmap {
            entries: Default::default(),
            threshold: opts.threshold,
        },
        correct_map: AttentionMap::default(),
    };
    if failing == 0 {
        return Ok(report);
    }
    if cancel.is_cancelled() {
        return Err(sim::SimError::Cancelled { at_cycle: 0 }.into());
    }

    // Pass 2 — full traces, buggy design only, and only because at least
    // one run failed. Labels and failure cycles come from the verdict
    // pass; PR 6's invariant (records are a pure function of statement +
    // values read) makes the re-simulation byte-identical to what a
    // single-pass flow would have recorded.
    let buggy_traces = {
        let _span = obs::span("full_trace");
        run_lane_groups(buggy_sim, &stimuli)?
    };
    let buggy = &buggy_sim.netlist().module;
    let runs_view: Vec<LabelledTrace<'_>> = buggy_traces
        .iter()
        .zip(&verdicts)
        .map(|(trace, v)| LabelledTrace {
            trace,
            label: v.label(),
            failure_cycles: if v.diverged() {
                v.divergence_cycles.clone()
            } else {
                Vec::new()
            },
        })
        .collect();
    let _explain_span = obs::span("explain");
    let mut explainer = Explainer::new(model, buggy, target);
    report.heatmap = grouped_heatmap(&mut explainer, &runs_view, opts.threshold, opts.run_groups);
    let (_, _, c_map) = explainer.explain(&runs_view, opts.threshold);
    report.correct_map = c_map;
    report.suspects = report
        .heatmap
        .ranked()
        .into_iter()
        .map(|(stmt, sus)| Suspect {
            stmt,
            suspiciousness: sus,
            source: buggy
                .assignment(stmt)
                .map(|a| format!("{} = {}", a.lhs.base, verilog::print_expr(&a.rhs)))
                .unwrap_or_else(|| "<unknown>".to_owned()),
        })
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use std::time::{Duration, Instant};

    const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                          wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
    const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                         wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

    fn modules() -> (Module, Module) {
        (
            verilog::parse(GOLDEN).unwrap().top().clone(),
            verilog::parse(BUGGY).unwrap().top().clone(),
        )
    }

    fn small_opts() -> LocalizeOptions {
        LocalizeOptions {
            runs: 24,
            cycles: 8,
            ..LocalizeOptions::default()
        }
    }

    #[test]
    fn localize_finds_failures_and_ranks_suspects() {
        let (golden, buggy) = modules();
        let model = VeriBugModel::new(ModelConfig::default());
        let report = run(&model, &golden, &buggy, "y", &small_opts()).unwrap();
        assert!(report.has_failures(), "a|b vs a&b must diverge");
        assert_eq!(report.total_runs, 24);
        assert_eq!(report.module, "m");
        // The ranking is sorted most-suspicious-first.
        for w in report.suspects.windows(2) {
            assert!(w[0].suspiciousness >= w[1].suspiciousness);
        }
    }

    #[test]
    fn localize_is_deterministic() {
        let (golden, buggy) = modules();
        let model = VeriBugModel::new(ModelConfig::default());
        let a = run(&model, &golden, &buggy, "y", &small_opts()).unwrap();
        let b = run(&model, &golden, &buggy, "y", &small_opts()).unwrap();
        assert_eq!(a.failing_runs, b.failing_runs);
        assert_eq!(a.suspects, b.suspects);
    }

    #[test]
    fn forked_cached_sims_match_fresh_elaboration() {
        let (golden, buggy) = modules();
        let model = VeriBugModel::new(ModelConfig::default());
        let fresh = run(&model, &golden, &buggy, "y", &small_opts()).unwrap();
        // Simulate the serve cache: build once, fork per request.
        let golden_template = Simulator::new(&golden).unwrap();
        let buggy_template = Simulator::new(&buggy).unwrap();
        for _ in 0..2 {
            let cached = run_with_sims(
                &model,
                &mut golden_template.fork(),
                &mut buggy_template.fork(),
                "y",
                &small_opts(),
                &CancelToken::inert(),
            )
            .unwrap();
            assert_eq!(cached.suspects, fresh.suspects);
            assert_eq!(cached.failing_runs, fresh.failing_runs);
        }
    }

    #[test]
    fn unknown_target_is_typed() {
        let (golden, buggy) = modules();
        let model = VeriBugModel::new(ModelConfig::default());
        let err = run(&model, &golden, &buggy, "nope", &small_opts()).unwrap_err();
        assert!(matches!(err, VeriBugError::UnknownTarget { .. }));
    }

    #[test]
    fn expired_deadline_cancels() {
        let (golden, buggy) = modules();
        let model = VeriBugModel::new(ModelConfig::default());
        let mut gs = Simulator::new(&golden).unwrap();
        let mut bs = Simulator::new(&buggy).unwrap();
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let err =
            run_with_sims(&model, &mut gs, &mut bs, "y", &small_opts(), &expired).unwrap_err();
        assert!(matches!(
            err,
            VeriBugError::Sim(sim::SimError::Cancelled { .. })
        ));
        // The token is cleared afterwards: the sims stay usable.
        let ok = run_with_sims(
            &model,
            &mut gs,
            &mut bs,
            "y",
            &small_opts(),
            &CancelToken::inert(),
        );
        assert!(ok.is_ok());
    }
}
