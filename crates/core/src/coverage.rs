//! Top-1 bug-coverage scoring (paper Sec. VI-A, Table III).
//!
//! A bug is **localized** when the highest suspiciousness score in the
//! heatmap `H_t` lands on the statement containing the root cause. Coverage
//! for a design/target pair is `localized / observable`.

use crate::explain::{Explainer, Heatmap, LabelledTrace, DEFAULT_THRESHOLD};
use crate::model::VeriBugModel;
use mutate::{Mutant, MutationKind};
use sim::TraceLabel;

/// Builds the explainer's input from a mutant's labelled co-simulation
/// runs, attaching divergence cycles to failing runs.
pub fn labelled_traces(mutant: &Mutant) -> Vec<LabelledTrace<'_>> {
    mutant
        .runs
        .iter()
        .map(|r| LabelledTrace {
            trace: &r.trace,
            label: r.label,
            failure_cycles: if r.label == TraceLabel::Failing {
                r.failure_cycles()
            } else {
                Vec::new()
            },
        })
        .collect()
}

/// The outcome of localizing one injected bug.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocalizationOutcome {
    /// The injected mutation's kind.
    pub kind: MutationKind,
    /// The mutated (root-cause) statement.
    pub bug_stmt: verilog::StmtId,
    /// Whether the bug was observable at the target at all.
    pub observable: bool,
    /// The heatmap's top-1 statement, if any.
    pub top1: Option<verilog::StmtId>,
    /// Whether top-1 localization succeeded.
    pub localized: bool,
    /// The bug statement's suspiciousness, when it entered the heatmap.
    pub bug_suspiciousness: Option<f32>,
    /// Heatmap size (candidate statements).
    pub heatmap_size: usize,
}

/// Aggregated top-1 coverage for a set of outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Coverage {
    /// Bugs injected.
    pub injected: usize,
    /// Bugs observable at the target.
    pub observable: usize,
    /// Bugs localized at top-1.
    pub localized: usize,
}

impl Coverage {
    /// `localized / observable` (1.0 when nothing was observable).
    pub fn ratio(&self) -> f64 {
        if self.observable == 0 {
            1.0
        } else {
            self.localized as f64 / self.observable as f64
        }
    }

    /// Coverage as a percentage.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }

    /// Merges another coverage tally into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.injected += other.injected;
        self.observable += other.observable;
        self.localized += other.localized;
    }
}

/// Localizes one mutant with a trained model and scores the outcome.
///
/// The explainer runs on the *mutant* design (that is what a verification
/// engineer has); the golden design only supplied the failure labels.
pub fn localize_mutant(
    model: &VeriBugModel,
    mutant: &Mutant,
    target: &str,
    threshold: f32,
) -> LocalizationOutcome {
    localize_mutant_with(
        model,
        mutant,
        target,
        threshold,
        crate::explain::DEFAULT_FAILURE_WINDOW,
    )
}

/// How many independent run groups the localization max-pools over (the
/// paper: "we consider the highest suspiciousness scores after running the
/// same VeriBug instance over multiple simulation runs").
pub const DEFAULT_RUN_GROUPS: usize = 8;

/// [`localize_mutant`] with an explicit failure-window width.
///
/// The mutant's runs are split into [`DEFAULT_RUN_GROUPS`] groups; each
/// group produces its own heatmap and a statement's final suspiciousness is
/// its highest across groups.
pub fn localize_mutant_with(
    model: &VeriBugModel,
    mutant: &Mutant,
    target: &str,
    threshold: f32,
    failure_window: u32,
) -> LocalizationOutcome {
    let mut explainer =
        Explainer::new(model, &mutant.module, target).with_failure_window(failure_window);
    let runs = labelled_traces(mutant);
    let heatmap = grouped_heatmap(&mut explainer, &runs, threshold, DEFAULT_RUN_GROUPS);
    score(&heatmap, mutant)
}

/// Splits `runs` into `groups` interleaved subsets, explains each, and
/// max-pools statement suspiciousness across the per-group heatmaps.
pub fn grouped_heatmap(
    explainer: &mut Explainer<'_>,
    runs: &[LabelledTrace<'_>],
    threshold: f32,
    groups: usize,
) -> Heatmap {
    let groups = groups.max(1).min(runs.len().max(1));
    let mut combined = Heatmap {
        entries: Default::default(),
        threshold,
    };
    for g in 0..groups {
        let subset: Vec<LabelledTrace<'_>> = runs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % groups == g)
            .map(|(_, r)| r.clone())
            .collect();
        // A group with no failing runs carries no localization signal.
        if !subset.iter().any(|r| r.label == sim::TraceLabel::Failing) {
            continue;
        }
        let (heatmap, _, _) = explainer.explain(&subset, threshold);
        for (stmt, entry) in heatmap.entries {
            match combined.entries.get_mut(&stmt) {
                None => {
                    combined.entries.insert(stmt, entry);
                }
                Some(cur) if entry.suspiciousness > cur.suspiciousness => {
                    *cur = entry;
                }
                Some(_) => {}
            }
        }
    }
    combined
}

fn score(heatmap: &Heatmap, mutant: &Mutant) -> LocalizationOutcome {
    let top1 = heatmap.top1();
    let bug_stmt = mutant.site.stmt;
    LocalizationOutcome {
        kind: mutant.site.kind,
        bug_stmt,
        observable: mutant.observable,
        top1,
        localized: mutant.observable && top1 == Some(bug_stmt),
        bug_suspiciousness: heatmap.entries.get(&bug_stmt).map(|e| e.suspiciousness),
        heatmap_size: heatmap.len(),
    }
}

/// Localizes every observable mutant of a campaign and tallies coverage.
/// Unobservable mutants count toward `injected` only.
pub fn coverage_for_mutants(
    model: &VeriBugModel,
    mutants: &[Mutant],
    target: &str,
) -> (Coverage, Vec<LocalizationOutcome>) {
    let mut cov = Coverage::default();
    let mut outcomes = Vec::with_capacity(mutants.len());
    for m in mutants {
        cov.injected += 1;
        if !m.observable {
            outcomes.push(LocalizationOutcome {
                kind: m.site.kind,
                bug_stmt: m.site.stmt,
                observable: false,
                top1: None,
                localized: false,
                bug_suspiciousness: None,
                heatmap_size: 0,
            });
            continue;
        }
        cov.observable += 1;
        let outcome = localize_mutant(model, m, target, DEFAULT_THRESHOLD);
        if outcome.localized {
            cov.localized += 1;
        }
        outcomes.push(outcome);
    }
    (cov, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ratio() {
        let c = Coverage {
            injected: 10,
            observable: 8,
            localized: 6,
        };
        assert!((c.ratio() - 0.75).abs() < 1e-9);
        assert!((c.percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_observable_is_full_coverage() {
        let c = Coverage {
            injected: 3,
            observable: 0,
            localized: 0,
        };
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Coverage {
            injected: 2,
            observable: 2,
            localized: 1,
        };
        a.merge(&Coverage {
            injected: 3,
            observable: 2,
            localized: 2,
        });
        assert_eq!(
            a,
            Coverage {
                injected: 5,
                observable: 4,
                localized: 3
            }
        );
    }
}
