//! The VeriBug deep-learning model (paper Sec. IV-C).
//!
//! For one executed statement:
//!
//! 1. **Operand embeddings** — each leaf-to-leaf path is embedded by the
//!    *PathRNN* (an LSTM over node-kind token embeddings); path embeddings
//!    are summed into the context embedding `c_i ∈ R^{d_c}`, concatenated
//!    with the one-hot value encoding `v_i ∈ R^{d_v}` into
//!    `x_i = (c_i ‖ v_i)`.
//! 2. **Aggregation layer** — `x*_i = MLP_θ1(Σ_j x_j + ε·x_i)` with a
//!    learnable skip weight ε, giving *relative* operand representations.
//! 3. **Attention layer** — `softmax(A X*ᵀ) X` with a learned attention
//!    vector `a` repeated over operands; the attention weights α are the
//!    importance scores used for localization.
//! 4. **Prediction** — `MLP_θ2` maps the attended statement embedding to
//!    two logits for the output-bit classes.

use neuro::{Adam, Embedding, Graph, Initializer, Lstm, Mlp, NodeId, ParamId, Params, Tensor};
use verilog::NodeKind;

use crate::features::StatementFeatures;

/// Model evaluations served through [`VeriBugModel::predict_with`].
static EVALS: obs::LazyCounter = obs::LazyCounter::new("model.evals");
/// Absolute logit margin `|l_1 - l_0|` per evaluation — a confidence
/// proxy: small margins mean the output-bit classes are nearly tied.
static SCORE_MARGIN: obs::LazyHistogram = obs::LazyHistogram::new_micros("model.score_margin");

/// How path embeddings are combined into a context embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ContextAggregation {
    /// Sum of path embeddings (the paper's formulation).
    Sum,
    /// Mean of path embeddings (ablation: normalizes operand contexts that
    /// have many paths).
    Mean,
}

/// Model hyper-parameters. Defaults follow the paper: `d_c = 16`,
/// `d_a = 32`; the value encoding is 2-way one-hot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Node-kind token embedding dimension.
    pub token_dim: usize,
    /// Context (PathRNN hidden) dimension — paper `d_c`.
    pub context_dim: usize,
    /// One-hot value-encoding dimension — `d_v` (2: bit is 0 / bit is 1).
    pub value_dim: usize,
    /// Attention / aggregation dimension — paper `d_a`.
    pub attention_dim: usize,
    /// Hidden width of the two MLPs.
    pub mlp_hidden: usize,
    /// Initial value of the learnable skip weight ε.
    pub epsilon_init: f32,
    /// How path embeddings combine into context embeddings.
    pub context_aggregation: ContextAggregation,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            token_dim: 16,
            context_dim: 16,
            value_dim: 2,
            attention_dim: 32,
            mlp_hidden: 64,
            epsilon_init: 0.5,
            context_aggregation: ContextAggregation::Sum,
            seed: 0xB106_CA7E,
        }
    }
}

/// One training/inference sample: a statement's features plus the operand
/// values and target bit observed in one execution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Operand truth values, aligned with `StatementFeatures::operands`
    /// (multi-bit operands are reduced to "any bit set").
    pub values: Vec<bool>,
    /// The executed statement's resulting output bit (same reduction).
    pub target: bool,
}

/// The output of one forward pass.
#[derive(Debug)]
pub struct Forward {
    /// Two-class logits node (`1×2`).
    pub logits: NodeId,
    /// The attention weights over operands (extracted values).
    pub attention: Vec<f32>,
    /// The stacked updated operand embeddings `X*` (`N×d_a`) — the paper's
    /// regularizer operates on its norm.
    pub x_star: NodeId,
}

/// The VeriBug model: persistent parameters plus forward-pass logic.
#[derive(Debug)]
pub struct VeriBugModel {
    config: ModelConfig,
    params: Params,
    token_emb: Embedding,
    path_rnn: Lstm,
    mlp_agg: Mlp,
    mlp_pred: Mlp,
    epsilon: ParamId,
    attention: ParamId,
}

impl VeriBugModel {
    /// Builds a freshly initialized model.
    pub fn new(config: ModelConfig) -> Self {
        let mut init = Initializer::new(config.seed);
        let mut params = Params::new();
        let token_emb = Embedding::register(
            &mut params,
            "tok",
            NodeKind::vocab_size(),
            config.token_dim,
            &mut init,
        );
        let path_rnn = Lstm::register(
            &mut params,
            "path_rnn",
            config.token_dim,
            config.context_dim,
            &mut init,
        );
        let x_dim = config.context_dim + config.value_dim;
        let mlp_agg = Mlp::register(
            &mut params,
            "mlp_agg",
            &[x_dim, config.mlp_hidden, config.attention_dim],
            &mut init,
        );
        let mlp_pred = Mlp::register(
            &mut params,
            "mlp_pred",
            &[x_dim, config.mlp_hidden, 2],
            &mut init,
        );
        let epsilon = params.register("epsilon", Tensor::scalar(config.epsilon_init));
        let attention = params.register_init("attention", 1, config.attention_dim, &mut init);
        VeriBugModel {
            config,
            params,
            token_emb,
            path_rnn,
            mlp_agg,
            mlp_pred,
            epsilon,
            attention,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The parameter store (for optimizers and inspection).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutable parameter store (for the trainer).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// The current value of the learnable skip weight ε.
    pub fn epsilon(&self) -> f32 {
        self.params.value(self.epsilon).item()
    }

    /// Runs one forward pass on `graph` for a statement execution.
    ///
    /// # Panics
    ///
    /// Panics when `sample.values` is not aligned with `features.operands`.
    pub fn forward(&self, g: &mut Graph, features: &StatementFeatures, sample: &Sample) -> Forward {
        assert_eq!(
            features.operand_count(),
            sample.values.len(),
            "operand/value mismatch for {}",
            features.stmt
        );
        // 1. Operand embeddings x_i = (c_i || v_i).
        let mut xs: Vec<NodeId> = Vec::with_capacity(features.operand_count());
        for (ctx, &value) in features.operands.iter().zip(&sample.values) {
            let mut path_embs: Vec<NodeId> = Vec::with_capacity(ctx.paths.len());
            for path in &ctx.paths {
                let tokens: Vec<NodeId> = path
                    .iter()
                    .map(|k| self.token_emb.lookup(g, &self.params, k.index()))
                    .collect();
                path_embs.push(self.path_rnn.run(g, &self.params, &tokens));
            }
            let c_i = match path_embs.len() {
                0 => g.input(Tensor::zeros(1, self.config.context_dim)),
                1 => path_embs[0],
                n => {
                    let stacked = g.concat_rows(&path_embs);
                    let summed = g.sum_rows(stacked);
                    match self.config.context_aggregation {
                        ContextAggregation::Sum => summed,
                        ContextAggregation::Mean => g.scale(summed, 1.0 / n as f32),
                    }
                }
            };
            let v_i = g.input(Tensor::one_hot(self.config.value_dim, usize::from(value)));
            xs.push(g.concat_cols(&[c_i, v_i]));
        }

        // 2. Aggregation layer: x*_i = MLP_θ1(Σ_j x_j + ε·x_i).
        let x_matrix = g.concat_rows(&xs); // N × (d_c + d_v)
        let sum_x = g.sum_rows(x_matrix); // 1 × (d_c + d_v)
        let eps = g.param(&self.params, self.epsilon);
        let mut x_stars: Vec<NodeId> = Vec::with_capacity(xs.len());
        for &x_i in &xs {
            let skip = g.scale_by(x_i, eps);
            let agg_in = g.add(sum_x, skip);
            x_stars.push(self.mlp_agg.forward(g, &self.params, agg_in));
        }
        let x_star = g.concat_rows(&x_stars); // N × d_a

        // 3. Attention: softmax(A X*ᵀ) X.
        let a = g.param(&self.params, self.attention);
        let (weights, stmt_emb) = neuro::dot_product_attention(g, a, x_star, x_matrix);

        // 4. Prediction.
        let logits = self.mlp_pred.forward(g, &self.params, stmt_emb);
        Forward {
            logits,
            attention: g.value(weights).data().to_vec(),
            x_star,
        }
    }

    /// Convenience inference: predicted output bit and attention weights.
    pub fn predict(&self, features: &StatementFeatures, values: &[bool]) -> (bool, Vec<f32>) {
        let mut g = Graph::new();
        self.predict_with(&mut g, features, values)
    }

    /// Like [`VeriBugModel::predict`], but reuses `graph` (cleared first) so
    /// batched inference over many samples keeps one tape allocation alive
    /// instead of re-allocating per call.
    pub fn predict_with(
        &self,
        g: &mut Graph,
        features: &StatementFeatures,
        values: &[bool],
    ) -> (bool, Vec<f32>) {
        g.clear();
        let fwd = self.forward(
            g,
            features,
            &Sample {
                values: values.to_vec(),
                target: false,
            },
        );
        EVALS.incr();
        let logits = g.value(fwd.logits);
        let class = logits.argmax_row();
        if obs::enabled() {
            let row = logits.data();
            if row.len() >= 2 {
                SCORE_MARGIN.record_f64(f64::from((row[1] - row[0]).abs()));
            }
        }
        (class == 1, fwd.attention)
    }

    /// Creates an Adam optimizer with the paper's settings
    /// (`lr = 1e-3`, `wd = 1e-5`).
    pub fn paper_optimizer() -> Adam {
        Adam::new(1e-3).with_weight_decay(1e-5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::StatementFeatures;

    fn arb_features() -> StatementFeatures {
        let unit = verilog::parse(
            "module m(input req1, input req2, output reg gnt1);\n\
             always @(*) begin\ngnt1 = req1 & ~req2;\nend\nendmodule",
        )
        .unwrap();
        let module = unit.top().clone();
        StatementFeatures::extract(&module.assignments()[0].clone()).unwrap()
    }

    #[test]
    fn attention_is_a_distribution_over_operands() {
        let model = VeriBugModel::new(ModelConfig::default());
        let f = arb_features();
        let (_, att) = model.predict(&f, &[true, false]);
        assert_eq!(att.len(), 2);
        let sum: f32 = att.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(att.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn forward_shapes() {
        let model = VeriBugModel::new(ModelConfig::default());
        let f = arb_features();
        let mut g = Graph::new();
        let fwd = model.forward(
            &mut g,
            &f,
            &Sample {
                values: vec![true, true],
                target: true,
            },
        );
        assert_eq!(g.value(fwd.logits).shape(), (1, 2));
        assert_eq!(g.value(fwd.x_star).shape(), (2, 32));
    }

    #[test]
    fn different_values_change_the_prediction_input() {
        let model = VeriBugModel::new(ModelConfig::default());
        let f = arb_features();
        let mut g = Graph::new();
        let a = model.forward(
            &mut g,
            &f,
            &Sample {
                values: vec![true, false],
                target: true,
            },
        );
        let b = model.forward(
            &mut g,
            &f,
            &Sample {
                values: vec![false, true],
                target: false,
            },
        );
        assert_ne!(g.value(a.logits).data(), g.value(b.logits).data());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m1 = VeriBugModel::new(ModelConfig::default());
        let m2 = VeriBugModel::new(ModelConfig::default());
        let f = arb_features();
        assert_eq!(
            m1.predict(&f, &[true, false]).1,
            m2.predict(&f, &[true, false]).1
        );
    }

    #[test]
    #[should_panic(expected = "operand/value mismatch")]
    fn misaligned_values_panic() {
        let model = VeriBugModel::new(ModelConfig::default());
        let f = arb_features();
        let _ = model.predict(&f, &[true]);
    }
}
