//! Define-by-run reverse-mode autograd over [`Tensor`]s.
//!
//! A [`Graph`] is a tape: every operation appends a node holding its forward
//! value and the identity of its parents. [`Graph::backward`] walks the tape
//! in reverse, propagating gradients and accumulating them into the
//! persistent [`Params`] store for leaf nodes bound to parameters.
//!
//! The op set is exactly what the VeriBug model (LSTM + aggregation +
//! attention + MLPs + regularized weighted cross-entropy) requires.

use crate::params::{GradBuffer, ParamId, Params};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f32),
    ScaleByScalar(NodeId, NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Relu(NodeId),
    SoftmaxRow(NodeId),
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    SumRows(NodeId),
    Transpose(NodeId),
    Row(NodeId, usize),
    CrossEntropyLogits(NodeId, usize),
    RecipFrobNorm(NodeId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
    param: Option<ParamId>,
}

/// A reverse-mode autograd tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    param_nodes: HashMap<ParamId, NodeId>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
            param_nodes: HashMap::new(),
        }
    }

    fn push(&mut self, value: Tensor, op: Op, param: Option<ParamId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { value, op, param });
        id
    }

    /// The forward value of a node.
    pub fn value(&self, n: NodeId) -> &Tensor {
        &self.nodes[n.0].value
    }

    /// Empties the tape while keeping its allocation, so one `Graph` can be
    /// reused across forward passes without reallocating the node vector.
    ///
    /// All previously returned [`NodeId`]s are invalidated.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.param_nodes.clear();
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds (or reuses) a leaf bound to a parameter; its gradient flows into
    /// the parameter's accumulator on [`Graph::backward`].
    pub fn param(&mut self, params: &Params, id: ParamId) -> NodeId {
        if let Some(&n) = self.param_nodes.get(&id) {
            return n;
        }
        let n = self.push(params.value(id).clone(), Op::Leaf, Some(id));
        self.param_nodes.insert(id, n);
        n
    }

    /// Adds a constant leaf (no gradient flows out of it).
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf, None)
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b), None)
    }

    /// Elementwise sum of two same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(v, Op::Add(a, b), None)
    }

    /// `a (r×c) + b (1×c)` broadcast over rows (bias add).
    ///
    /// # Panics
    ///
    /// Panics when `b` is not `1×c`.
    pub fn add_row_broadcast(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!((br, bc), (1, ac), "broadcast add {ar}x{ac} + {br}x{bc}");
        let mut v = self.value(a).clone();
        for r in 0..ar {
            for c in 0..ac {
                v[(r, c)] += self.value(b)[(0, c)];
            }
        }
        self.push(v, Op::AddRowBroadcast(a, b), None)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(v, Op::Mul(a, b), None)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).map(|x| x * s);
        self.push(v, Op::Scale(a, s), None)
    }

    /// Multiplication by a learnable `1×1` scalar node (the paper's ε).
    ///
    /// # Panics
    ///
    /// Panics when `s` is not `1×1`.
    pub fn scale_by(&mut self, a: NodeId, s: NodeId) -> NodeId {
        assert_eq!(self.value(s).shape(), (1, 1), "scale_by needs 1x1 scalar");
        let k = self.value(s).item();
        let v = self.value(a).map(|x| x * k);
        self.push(v, Op::ScaleByScalar(a, s), None)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a), None)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a), None)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a), None)
    }

    /// Softmax applied independently to each row.
    pub fn softmax_row(&mut self, a: NodeId) -> NodeId {
        let t = self.value(a);
        let mut v = t.clone();
        for r in 0..t.rows() {
            let row = t.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (c, e) in exps.iter().enumerate() {
                v[(r, c)] = e / sum;
            }
        }
        self.push(v, Op::SoftmaxRow(a), None)
    }

    /// Concatenates same-row-count nodes along columns.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|p| self.value(*p).cols()).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut off = 0;
        for p in parts {
            let t = self.value(*p);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                for c in 0..t.cols() {
                    v[(r, off + c)] = t[(r, c)];
                }
            }
            off += t.cols();
        }
        self.push(v, Op::ConcatCols(parts.to_vec()), None)
    }

    /// Stacks same-column-count nodes along rows.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|p| self.value(*p).rows()).sum();
        let mut v = Tensor::zeros(total, cols);
        let mut off = 0;
        for p in parts {
            let t = self.value(*p);
            assert_eq!(t.cols(), cols, "concat_rows col mismatch");
            for r in 0..t.rows() {
                for c in 0..cols {
                    v[(off + r, c)] = t[(r, c)];
                }
            }
            off += t.rows();
        }
        self.push(v, Op::ConcatRows(parts.to_vec()), None)
    }

    /// Sums all rows into a `1×c` vector.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let t = self.value(a);
        let mut v = Tensor::zeros(1, t.cols());
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                v[(0, c)] += t[(r, c)];
            }
        }
        self.push(v, Op::SumRows(a), None)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transposed();
        self.push(v, Op::Transpose(a), None)
    }

    /// Extracts row `r` as a `1×c` node.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&mut self, a: NodeId, r: usize) -> NodeId {
        let t = self.value(a);
        assert!(r < t.rows(), "row {r} out of {}", t.rows());
        let v = Tensor::row_vector(t.row(r).to_vec());
        self.push(v, Op::Row(a, r), None)
    }

    /// Cross-entropy of a `1×k` logits node against a class index:
    /// `-log softmax(logits)[target]`, yielding a `1×1` scalar.
    ///
    /// # Panics
    ///
    /// Panics when the node is not a single row or `target` is out of range.
    pub fn cross_entropy_logits(&mut self, logits: NodeId, target: usize) -> NodeId {
        let t = self.value(logits);
        assert_eq!(t.rows(), 1, "cross entropy needs 1xk logits");
        assert!(target < t.cols(), "target class out of range");
        let row = t.row(0);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        let loss = log_sum - row[target];
        self.push(
            Tensor::scalar(loss),
            Op::CrossEntropyLogits(logits, target),
            None,
        )
    }

    /// `1 / ||A||_F` as a `1×1` scalar — the paper's localization
    /// regularizer term. The norm is clamped below at `1e-6`.
    pub fn recip_frob_norm(&mut self, a: NodeId) -> NodeId {
        let norm = self.value(a).frob_norm().max(1e-6);
        self.push(Tensor::scalar(1.0 / norm), Op::RecipFrobNorm(a), None)
    }

    /// Runs backpropagation from a `1×1` loss node, accumulating parameter
    /// gradients into `params`.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a `1×1` scalar.
    pub fn backward(&self, loss: NodeId, params: &mut Params) {
        self.backward_with(loss, &mut |pid, g| params.accumulate_grad(pid, g));
    }

    /// Runs backpropagation from a `1×1` loss node, accumulating parameter
    /// gradients into a detached [`GradBuffer`].
    ///
    /// This is the data-parallel entry point: each worker backpropagates
    /// into its own buffer against a shared immutable `Params`, and the
    /// buffers are merged in a fixed order afterwards.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a `1×1` scalar.
    pub fn backward_to(&self, loss: NodeId, buf: &mut GradBuffer) {
        self.backward_with(loss, &mut |pid, g| buf.accumulate(pid, g));
    }

    /// Backpropagation core: walks the tape in reverse and hands each leaf
    /// parameter gradient to `sink`.
    fn backward_with(&self, loss: NodeId, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            match &node.op {
                Op::Leaf => {
                    if let Some(pid) = node.param {
                        sink(pid, &g);
                    }
                }
                Op::MatMul(a, b) => {
                    // da = g·bᵀ and db = aᵀ·g via the transpose-free kernels.
                    let da = g.matmul_nt(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_tn(&g);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddRowBroadcast(a, b) => {
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db[(0, c)] += g[(r, c)];
                        }
                    }
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *b, db);
                }
                Op::Mul(a, b) => {
                    let da = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let db = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Scale(a, s) => {
                    accumulate(&mut grads, *a, g.map(|x| x * s));
                }
                Op::ScaleByScalar(a, s) => {
                    let k = self.nodes[s.0].value.item();
                    let da = g.map(|x| x * k);
                    let ds = g.zip(&self.nodes[a.0].value, |gx, ax| gx * ax).sum();
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *s, Tensor::scalar(ds));
                }
                Op::Tanh(a) => {
                    let da = g.zip(&node.value, |gx, y| gx * (1.0 - y * y));
                    accumulate(&mut grads, *a, da);
                }
                Op::Sigmoid(a) => {
                    let da = g.zip(&node.value, |gx, y| gx * y * (1.0 - y));
                    accumulate(&mut grads, *a, da);
                }
                Op::Relu(a) => {
                    let da = g.zip(
                        &self.nodes[a.0].value,
                        |gx, x| if x > 0.0 { gx } else { 0.0 },
                    );
                    accumulate(&mut grads, *a, da);
                }
                Op::SoftmaxRow(a) => {
                    let y = &node.value;
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g[(r, c)] * y[(r, c)]).sum();
                        for c in 0..y.cols() {
                            da[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let t = &self.nodes[p.0].value;
                        let mut dp = Tensor::zeros(t.rows(), t.cols());
                        for r in 0..t.rows() {
                            for c in 0..t.cols() {
                                dp[(r, c)] = g[(r, off + c)];
                            }
                        }
                        off += t.cols();
                        accumulate(&mut grads, *p, dp);
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let t = &self.nodes[p.0].value;
                        let mut dp = Tensor::zeros(t.rows(), t.cols());
                        for r in 0..t.rows() {
                            for c in 0..t.cols() {
                                dp[(r, c)] = g[(off + r, c)];
                            }
                        }
                        off += t.rows();
                        accumulate(&mut grads, *p, dp);
                    }
                }
                Op::SumRows(a) => {
                    let t = &self.nodes[a.0].value;
                    let mut da = Tensor::zeros(t.rows(), t.cols());
                    for r in 0..t.rows() {
                        for c in 0..t.cols() {
                            da[(r, c)] = g[(0, c)];
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Transpose(a) => {
                    accumulate(&mut grads, *a, g.transposed());
                }
                Op::Row(a, r) => {
                    let t = &self.nodes[a.0].value;
                    let mut da = Tensor::zeros(t.rows(), t.cols());
                    for c in 0..t.cols() {
                        da[(*r, c)] = g[(0, c)];
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::CrossEntropyLogits(a, target) => {
                    let logits = &self.nodes[a.0].value;
                    let row = logits.row(0);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
                    let sum: f32 = exps.iter().sum();
                    let scale = g.item();
                    let mut da = Tensor::zeros(1, logits.cols());
                    for c in 0..logits.cols() {
                        let soft = exps[c] / sum;
                        da[(0, c)] = scale * (soft - f32::from(u8::from(c == *target)));
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::RecipFrobNorm(a) => {
                    let t = &self.nodes[a.0].value;
                    let norm = t.frob_norm().max(1e-6);
                    let scale = -g.item() / (norm * norm * norm);
                    let da = t.map(|x| x * scale);
                    accumulate(&mut grads, *a, da);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], n: NodeId, delta: Tensor) {
    match &mut grads[n.0] {
        Some(g) => g.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;

    /// Numerically checks d(loss)/d(param[idx]) by central differences.
    fn finite_diff(
        params: &mut Params,
        pid: ParamId,
        idx: (usize, usize),
        f: &dyn Fn(&Params) -> f32,
    ) -> f32 {
        let eps = 1e-3_f32;
        let orig = params.value(pid)[idx];
        params.value_mut(pid)[idx] = orig + eps;
        let hi = f(params);
        params.value_mut(pid)[idx] = orig - eps;
        let lo = f(params);
        params.value_mut(pid)[idx] = orig;
        (hi - lo) / (2.0 * eps)
    }

    /// A small but representative network touching every op:
    /// softmax-attention over rows of relu(X·W + b), scalar-scaled skip,
    /// cross-entropy + reciprocal-norm regularizer.
    fn forward(params: &Params) -> (Graph, NodeId) {
        let mut g = Graph::new();
        let w = g.param(params, ParamId(0));
        let b = g.param(params, ParamId(1));
        let att = g.param(params, ParamId(2));
        let eps = g.param(params, ParamId(3));
        let x = g.input(Tensor::from_vec(
            3,
            4,
            vec![
                0.5, -0.2, 0.3, 0.8, -0.5, 0.1, 0.9, -0.3, 0.2, 0.7, -0.8, 0.4,
            ],
        ));
        let h0 = g.matmul(x, w); // 3x5
        let h1 = g.add_row_broadcast(h0, b);
        let h = g.relu(h1);
        let skip = g.scale_by(h, eps);
        let h = g.add(h, skip);
        let th = g.tanh(h);
        let sg = g.sigmoid(h);
        let gated = g.mul(th, sg);
        // Attention: scores = gated · attᵀ -> 3x1; softmax over the column.
        let att_t = g.transpose(att); // 5x1
        let scores = g.matmul(gated, att_t); // 3x1
        let scores_t = g.transpose(scores); // 1x3
        let alpha = g.softmax_row(scores_t); // 1x3
        let ctx = g.matmul(alpha, gated); // 1x5
        let r0 = g.row(gated, 0);
        let both = g.concat_cols(&[ctx, r0]); // 1x10
        let stacked = g.concat_rows(&[ctx, r0]); // 2x5
        let summed = g.sum_rows(stacked); // 1x5
        let all = g.concat_cols(&[both, summed]); // 1x15
        let w2 = g.input(Tensor::from_vec(
            15,
            2,
            (0..30).map(|i| (i as f32) * 0.01 - 0.15).collect(),
        ));
        let logits = g.matmul(all, w2);
        let ce = g.cross_entropy_logits(logits, 1);
        let reg = g.recip_frob_norm(gated);
        let reg_scaled = g.scale(reg, 0.1);
        let loss = g.add(ce, reg_scaled);
        (g, loss)
    }

    fn loss_value(params: &Params) -> f32 {
        let (g, loss) = forward(params);
        g.value(loss).item()
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut init = Initializer::new(1234);
        let mut params = Params::new();
        params.register("w", init.sample(4, 5));
        params.register("b", init.sample(1, 5));
        params.register("att", init.sample(1, 5));
        params.register("eps", Tensor::scalar(0.3));

        let (g, loss) = forward(&params);
        g.backward(loss, &mut params);

        for pid in [ParamId(0), ParamId(1), ParamId(2), ParamId(3)] {
            let (rows, cols) = params.value(pid).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let analytic = params.grad(pid)[(r, c)];
                    let numeric = finite_diff(&mut params, pid, (r, c), &loss_value);
                    assert!(
                        (analytic - numeric).abs() < 2e-2_f32.max(numeric.abs() * 0.05),
                        "param {} [{r},{c}]: analytic {analytic} vs numeric {numeric}",
                        params.name(pid),
                    );
                }
            }
        }
    }

    #[test]
    fn backward_to_buffer_matches_backward_into_params() {
        let mut init = Initializer::new(1234);
        let mut params = Params::new();
        params.register("w", init.sample(4, 5));
        params.register("b", init.sample(1, 5));
        params.register("att", init.sample(1, 5));
        params.register("eps", Tensor::scalar(0.3));

        let (g, loss) = forward(&params);
        let mut buf = GradBuffer::zeros_like(&params);
        g.backward_to(loss, &mut buf);

        let mut direct = params.clone();
        g.backward(loss, &mut direct);
        for pid in direct.ids() {
            assert_eq!(buf.grad(pid), direct.grad(pid), "{}", direct.name(pid));
        }
    }

    #[test]
    fn cleared_graph_reproduces_the_same_forward_pass() {
        let mut init = Initializer::new(1234);
        let mut params = Params::new();
        params.register("w", init.sample(4, 5));
        params.register("b", init.sample(1, 5));
        params.register("att", init.sample(1, 5));
        params.register("eps", Tensor::scalar(0.3));

        let (fresh, loss) = forward(&params);
        let expected = fresh.value(loss).item();

        let mut g = Graph::new();
        let junk = g.input(Tensor::scalar(42.0));
        let _ = g.mul(junk, junk);
        g.clear();
        assert!(g.is_empty());
        // Rebuild the same network on the cleared tape via the param cache.
        let (rebuilt, loss2) = forward(&params);
        assert_eq!(rebuilt.value(loss2).item(), expected);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]));
        let s = g.softmax_row(x);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_decreases_with_confidence() {
        let mut g = Graph::new();
        let confident = g.input(Tensor::from_vec(1, 2, vec![0.0, 5.0]));
        let unsure = g.input(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let lc = g.cross_entropy_logits(confident, 1);
        let lu = g.cross_entropy_logits(unsure, 1);
        assert!(g.value(lc).item() >= 0.0);
        assert!(g.value(lc).item() < g.value(lu).item());
    }

    #[test]
    fn param_nodes_are_cached() {
        let mut params = Params::new();
        let pid = params.register("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let a = g.param(&params, pid);
        let b = g.param(&params, pid);
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_accumulates_across_shared_use() {
        // loss = w*w (via mul of the same param node) -> dloss/dw = 2w.
        let mut params = Params::new();
        let pid = params.register("w", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let w = g.param(&params, pid);
        let sq = g.mul(w, w);
        g.backward(sq, &mut params);
        assert!((params.grad(pid).item() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn input_leaves_get_no_param_grads() {
        let mut params = Params::new();
        let pid = params.register("w", Tensor::scalar(1.0));
        let mut g = Graph::new();
        let w = g.param(&params, pid);
        let x = g.input(Tensor::scalar(5.0));
        let y = g.mul(w, x);
        g.backward(y, &mut params);
        assert!((params.grad(pid).item() - 5.0).abs() < 1e-6);
    }
}
