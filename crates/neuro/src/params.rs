//! Named, persistent model parameters with accumulated gradients.

use crate::init::Initializer;
use crate::tensor::Tensor;

/// Handle to one parameter tensor inside a [`Params`] store.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ParamId(pub usize);

/// The parameter store: values, gradient accumulators, and names.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Params {
    tensors: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Params {
            tensors: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Registers a parameter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate parameter `{name}`"
        );
        let id = ParamId(self.tensors.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.tensors.push(value);
        self.names.push(name.to_owned());
        id
    }

    /// Registers a parameter drawn from an initializer.
    pub fn register_init(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        init: &mut Initializer,
    ) -> ParamId {
        let value = init.sample(rows, cols);
        self.register(name, value)
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `delta` into a parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterates over every parameter id.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.tensors.len()).map(ParamId)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameter tensors.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(|t| t.rows() * t.cols()).sum()
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::new()
    }
}

/// A detached gradient accumulator shaped like a [`Params`] store.
///
/// Data-parallel training backpropagates each shard into its own
/// `GradBuffer` (the shared `Params` stays immutable, so workers need no
/// locks), then merges the buffers **in a fixed shard order** before the
/// optimizer step. Because merge order never depends on the worker count,
/// the summed gradients — and everything downstream — are bit-identical at
/// any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// A zeroed buffer with one accumulator per parameter in `params`.
    pub fn zeros_like(params: &Params) -> Self {
        GradBuffer {
            grads: params
                .tensors
                .iter()
                .map(|t| Tensor::zeros(t.rows(), t.cols()))
                .collect(),
        }
    }

    /// Adds `delta` into the accumulator for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or shapes mismatch.
    pub fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// The accumulated gradient for `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds every accumulator of `other` into this buffer.
    ///
    /// # Panics
    ///
    /// Panics when the buffers come from differently-shaped stores.
    pub fn merge(&mut self, other: &GradBuffer) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "merging gradient buffers of different stores"
        );
        for (mine, theirs) in self.grads.iter_mut().zip(&other.grads) {
            mine.add_assign(theirs);
        }
    }

    /// Flushes the buffer into the gradient accumulators of `params`.
    ///
    /// # Panics
    ///
    /// Panics when `params` has a different parameter count or shapes.
    pub fn apply_to(&self, params: &mut Params) {
        assert_eq!(
            self.grads.len(),
            params.grads.len(),
            "applying a gradient buffer to a different store"
        );
        for (id, grad) in self.grads.iter().enumerate() {
            params.accumulate_grad(ParamId(id), grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(2, 3));
        assert_eq!(p.id_of("w"), Some(w));
        assert_eq!(p.name(w), "w");
        assert_eq!(p.scalar_count(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(1, 1));
        p.register("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn gradient_accumulation_and_reset() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(1, 2));
        p.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        p.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(p.grad(w).data(), &[1.5, 2.5]);
        p.zero_grads();
        assert_eq!(p.grad(w).data(), &[0., 0.]);
    }

    #[test]
    fn grad_buffer_merge_and_apply_match_direct_accumulation() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(1, 2));
        let b = p.register("b", Tensor::zeros(1, 1));

        let mut direct = p.clone();
        direct.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        direct.accumulate_grad(b, &Tensor::scalar(3.0));
        direct.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![0.25, 0.5]));

        let mut shard0 = GradBuffer::zeros_like(&p);
        shard0.accumulate(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        shard0.accumulate(b, &Tensor::scalar(3.0));
        let mut shard1 = GradBuffer::zeros_like(&p);
        shard1.accumulate(w, &Tensor::from_vec(1, 2, vec![0.25, 0.5]));

        let mut merged = GradBuffer::zeros_like(&p);
        merged.merge(&shard0);
        merged.merge(&shard1);
        assert_eq!(merged.grad(w).data(), &[1.25, 2.5]);
        merged.apply_to(&mut p);

        assert_eq!(p.grad(w), direct.grad(w));
        assert_eq!(p.grad(b), direct.grad(b));
    }

    #[test]
    #[should_panic(expected = "different stores")]
    fn mismatched_buffer_merge_panics() {
        let mut p1 = Params::new();
        p1.register("w", Tensor::zeros(1, 1));
        let p2 = Params::new();
        let mut b1 = GradBuffer::zeros_like(&p1);
        let b2 = GradBuffer::zeros_like(&p2);
        b1.merge(&b2);
    }
}
