//! Named, persistent model parameters with accumulated gradients.

use crate::init::Initializer;
use crate::tensor::Tensor;

/// Handle to one parameter tensor inside a [`Params`] store.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ParamId(pub usize);

/// The parameter store: values, gradient accumulators, and names.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Params {
    tensors: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Params {
            tensors: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Registers a parameter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate parameter `{name}`"
        );
        let id = ParamId(self.tensors.len());
        self.grads
            .push(Tensor::zeros(value.rows(), value.cols()));
        self.tensors.push(value);
        self.names.push(name.to_owned());
        id
    }

    /// Registers a parameter drawn from an initializer.
    pub fn register_init(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        init: &mut Initializer,
    ) -> ParamId {
        let value = init.sample(rows, cols);
        self.register(name, value)
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `delta` into a parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterates over every parameter id.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.tensors.len()).map(ParamId)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameter tensors.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(|t| t.rows() * t.cols()).sum()
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(2, 3));
        assert_eq!(p.id_of("w"), Some(w));
        assert_eq!(p.name(w), "w");
        assert_eq!(p.scalar_count(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(1, 1));
        p.register("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn gradient_accumulation_and_reset() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(1, 2));
        p.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        p.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(p.grad(w).data(), &[1.5, 2.5]);
        p.zero_grads();
        assert_eq!(p.grad(w).data(), &[0., 0.]);
    }
}
