//! Seeded weight initialization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tensor::Tensor;

/// A seeded initializer producing Xavier/Glorot-uniform samples.
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Initializer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a `rows×cols` tensor from `U(-limit, limit)` with
    /// `limit = sqrt(6 / (rows + cols))` (Glorot uniform).
    pub fn sample(&mut self, rows: usize, cols: usize) -> Tensor {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| self.rng.random_range(-limit..limit))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Samples a tensor from `U(-limit, limit)` with an explicit limit.
    pub fn sample_uniform(&mut self, rows: usize, cols: usize, limit: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|_| self.rng.random_range(-limit..limit))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = Initializer::new(7).sample(4, 4);
        let b = Initializer::new(7).sample(4, 4);
        let c = Initializer::new(8).sample(4, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_glorot_limit() {
        let t = Initializer::new(1).sample(10, 10);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        // And isn't degenerate.
        assert!(t.data().iter().any(|v| v.abs() > 1e-4));
    }
}
