//! Dot-product attention building blocks.

use crate::graph::{Graph, NodeId};

/// Dot-product attention of one query over a set of keys/values.
///
/// Given `query (1×d)`, `keys (N×d)`, and `values (N×c)`, computes
/// `weights = softmax(keys · queryᵀ)` (a `1×N` distribution over the rows)
/// and the attended context `weights · values (1×c)`.
///
/// Returns `(weights, context)`.
///
/// This is the shape VeriBug's attention layer uses: the repeated attention
/// vector `A` of the paper collapses to a single query row, keys are the
/// *updated* operand embeddings `X*`, and values are the raw operand
/// embeddings `X` (paper Sec. IV-C, "Attention layer").
pub fn dot_product_attention(
    g: &mut Graph,
    query: NodeId,
    keys: NodeId,
    values: NodeId,
) -> (NodeId, NodeId) {
    let qt = g.transpose(query); // d×1
    let scores = g.matmul(keys, qt); // N×1
    let scores_row = g.transpose(scores); // 1×N
    let weights = g.softmax_row(scores_row); // 1×N
    let context = g.matmul(weights, values); // 1×c
    (weights, context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn weights_are_a_distribution() {
        let mut g = Graph::new();
        let q = g.input(Tensor::from_vec(1, 3, vec![1., 0., -1.]));
        let k = g.input(Tensor::from_vec(
            4,
            3,
            vec![
                0.2, 0.1, 0.0, //
                1.0, 0.0, -1.0, //
                -1.0, 0.0, 1.0, //
                0.0, 0.0, 0.0,
            ],
        ));
        let v = g.input(Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 0., 0.]));
        let (w, ctx) = dot_product_attention(&mut g, q, k, v);
        let wv = g.value(w);
        assert_eq!(wv.shape(), (1, 4));
        assert!((wv.sum() - 1.0).abs() < 1e-6);
        assert!(wv.data().iter().all(|&x| x >= 0.0));
        assert_eq!(g.value(ctx).shape(), (1, 2));
        // The aligned key (row 1) must get the largest weight.
        assert_eq!(wv.argmax_row(), 1);
    }

    #[test]
    fn uniform_keys_give_uniform_weights() {
        let mut g = Graph::new();
        let q = g.input(Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        let k = g.input(Tensor::from_vec(3, 2, vec![1., 1., 1., 1., 1., 1.]));
        let v = g.input(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let (w, ctx) = dot_product_attention(&mut g, q, k, v);
        for &x in g.value(w).data() {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
        assert!((g.value(ctx).item() - 2.0).abs() < 1e-6);
    }
}
