//! A single-layer LSTM — the paper's *PathRNN* backbone.

use crate::graph::{Graph, NodeId};
use crate::init::Initializer;
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Parameter handles for one LSTM layer (separate matrices per gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    w_i: ParamId,
    u_i: ParamId,
    b_i: ParamId,
    w_f: ParamId,
    u_f: ParamId,
    b_f: ParamId,
    w_g: ParamId,
    u_g: ParamId,
    b_g: ParamId,
    w_o: ParamId,
    u_o: ParamId,
    b_o: ParamId,
}

impl Lstm {
    /// Registers a fresh LSTM's parameters under `prefix`.
    ///
    /// The forget-gate bias is initialized to 1.0 (standard practice, keeps
    /// early training stable); every other weight is Glorot-uniform.
    pub fn register(
        params: &mut Params,
        prefix: &str,
        input_dim: usize,
        hidden_dim: usize,
        init: &mut Initializer,
    ) -> Self {
        let w = |params: &mut Params, name: &str, r: usize, c: usize, init: &mut Initializer| {
            params.register_init(&format!("{prefix}.{name}"), r, c, init)
        };
        let ones_bias = Tensor::from_vec(1, hidden_dim, vec![1.0; hidden_dim]);
        Lstm {
            input_dim,
            hidden_dim,
            w_i: w(params, "w_i", input_dim, hidden_dim, init),
            u_i: w(params, "u_i", hidden_dim, hidden_dim, init),
            b_i: params.register(&format!("{prefix}.b_i"), Tensor::zeros(1, hidden_dim)),
            w_f: w(params, "w_f", input_dim, hidden_dim, init),
            u_f: w(params, "u_f", hidden_dim, hidden_dim, init),
            b_f: params.register(&format!("{prefix}.b_f"), ones_bias),
            w_g: w(params, "w_g", input_dim, hidden_dim, init),
            u_g: w(params, "u_g", hidden_dim, hidden_dim, init),
            b_g: params.register(&format!("{prefix}.b_g"), Tensor::zeros(1, hidden_dim)),
            w_o: w(params, "w_o", input_dim, hidden_dim, init),
            u_o: w(params, "u_o", hidden_dim, hidden_dim, init),
            b_o: params.register(&format!("{prefix}.b_o"), Tensor::zeros(1, hidden_dim)),
        }
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One LSTM step: `(h, c) -> (h', c')` given input `x` (`1×input_dim`).
    pub fn step(
        &self,
        g: &mut Graph,
        params: &Params,
        x: NodeId,
        h: NodeId,
        c: NodeId,
    ) -> (NodeId, NodeId) {
        let gate = |g: &mut Graph, w: ParamId, u: ParamId, b: ParamId| {
            let wn = g.param(params, w);
            let un = g.param(params, u);
            let bn = g.param(params, b);
            let xw = g.matmul(x, wn);
            let hu = g.matmul(h, un);
            let s = g.add(xw, hu);
            g.add(s, bn)
        };
        let i_pre = gate(g, self.w_i, self.u_i, self.b_i);
        let i = g.sigmoid(i_pre);
        let f_pre = gate(g, self.w_f, self.u_f, self.b_f);
        let f = g.sigmoid(f_pre);
        let g_pre = gate(g, self.w_g, self.u_g, self.b_g);
        let gt = g.tanh(g_pre);
        let o_pre = gate(g, self.w_o, self.u_o, self.b_o);
        let o = g.sigmoid(o_pre);
        let fc = g.mul(f, c);
        let ig = g.mul(i, gt);
        let c_new = g.add(fc, ig);
        let tc = g.tanh(c_new);
        let h_new = g.mul(o, tc);
        (h_new, c_new)
    }

    /// Runs the LSTM over a sequence of `1×input_dim` inputs and returns the
    /// final hidden state (`1×hidden_dim`). An empty sequence yields the
    /// zero state.
    pub fn run(&self, g: &mut Graph, params: &Params, inputs: &[NodeId]) -> NodeId {
        let mut h = g.input(Tensor::zeros(1, self.hidden_dim));
        let mut c = g.input(Tensor::zeros(1, self.hidden_dim));
        for &x in inputs {
            let (h2, c2) = self.step(g, params, x, h, c);
            h = h2;
            c = c2;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Params, Lstm) {
        let mut init = Initializer::new(99);
        let mut params = Params::new();
        let lstm = Lstm::register(&mut params, "rnn", 4, 8, &mut init);
        (params, lstm)
    }

    #[test]
    fn final_state_shape_and_boundedness() {
        let (params, lstm) = setup();
        let mut g = Graph::new();
        let xs: Vec<NodeId> = (0..5).map(|i| g.input(Tensor::one_hot(4, i % 4))).collect();
        let h = lstm.run(&mut g, &params, &xs);
        assert_eq!(g.value(h).shape(), (1, 8));
        // h = o * tanh(c) is bounded in (-1, 1).
        assert!(g.value(h).data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn distinguishes_sequences() {
        let (params, lstm) = setup();
        let mut g = Graph::new();
        let seq_a: Vec<NodeId> = [0usize, 1, 2]
            .iter()
            .map(|&i| g.input(Tensor::one_hot(4, i)))
            .collect();
        let seq_b: Vec<NodeId> = [2usize, 1, 0]
            .iter()
            .map(|&i| g.input(Tensor::one_hot(4, i)))
            .collect();
        let ha = lstm.run(&mut g, &params, &seq_a);
        let hb = lstm.run(&mut g, &params, &seq_b);
        assert_ne!(g.value(ha), g.value(hb), "order must matter");
    }

    #[test]
    fn empty_sequence_is_zero_state() {
        let (params, lstm) = setup();
        let mut g = Graph::new();
        let h = lstm.run(&mut g, &params, &[]);
        assert!(g.value(h).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradients_flow_to_all_gates() {
        let (mut params, lstm) = setup();
        let mut g = Graph::new();
        let xs: Vec<NodeId> = (0..3).map(|i| g.input(Tensor::one_hot(4, i))).collect();
        let h = lstm.run(&mut g, &params, &xs);
        let ht = g.transpose(h);
        let sq = g.matmul(h, ht); // scalar ||h||^2
        g.backward(sq, &mut params);
        for pid in params.ids().collect::<Vec<_>>() {
            let gnorm = params.grad(pid).frob_norm();
            assert!(
                gnorm.is_finite(),
                "gradient of {} not finite",
                params.name(pid)
            );
        }
        // At least the input weights of the candidate gate must receive
        // nonzero gradient.
        let wg = params.id_of("rnn.w_g").unwrap();
        assert!(params.grad(wg).frob_norm() > 0.0);
    }
}
