//! Dense row-major `f32` matrices — the only tensor shape the VeriBug model
//! needs (vectors are `1×n` matrices).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty tensor {rows}x{cols}");
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "empty tensor {rows}x{cols}");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Tensor { rows, cols, data }
    }

    /// A `1×n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor::from_vec(1, n, data)
    }

    /// A `1×1` scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// A one-hot `1×n` row vector.
    ///
    /// # Panics
    ///
    /// Panics when `hot >= n`.
    pub fn one_hot(n: usize, hot: usize) -> Self {
        assert!(hot < n, "one-hot index {hot} out of {n}");
        let mut t = Tensor::zeros(1, n);
        t[(0, hot)] = 1.0;
        t
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The single element of a `1×1` tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Borrows one row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix multiply `self (r×k) · other (k×c) -> (r×c)`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} by {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Matrix multiply against a transposed right operand without
    /// materializing the transpose: `self (m×k) · otherᵀ (k×n) -> (m×n)`
    /// where `other` is `n×k`.
    ///
    /// Each output element is a dot product of two row slices, so the inner
    /// loop is contiguous in both operands.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt {}x{} by ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (d, j) in orow.iter_mut().zip(0..other.rows) {
                let brow = other.row(j);
                *d = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Matrix multiply with a transposed left operand without materializing
    /// the transpose: `selfᵀ (m×k) · other (k×n) -> (m×n)` where `self` is
    /// `k×m`.
    ///
    /// Computed as a sum of rank-1 updates over the shared `k` dimension;
    /// the inner loop streams rows of both `other` and the output.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn ({}x{})ᵀ by {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        for t in 0..self.rows {
            let arow = self.row(t);
            let brow = &other.data[t * other.cols..(t + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(brow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combine with another same-shape tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place elementwise add.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in a `1×n` row vector.
    ///
    /// # Panics
    ///
    /// Panics when the tensor has more than one row.
    pub fn argmax_row(&self) -> usize {
        assert_eq!(self.rows, 1, "argmax_row on multi-row tensor");
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_free_matmuls_match_explicit_transposes() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0., 5., -6.]);
        let b = Tensor::from_vec(
            4,
            3,
            vec![7., 8., 9., 10., 0., 12., 13., 14., 15., 16., 17., 18.],
        );
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transposed()));
        let c = Tensor::from_vec(2, 4, vec![1., 2., 0., 4., 5., 6., 7., 8.]);
        assert_eq!(a.matmul_tn(&c), a.transposed().matmul(&c));
    }

    #[test]
    #[should_panic(expected = "matmul_nt")]
    fn matmul_nt_shape_mismatch_panics() {
        let _ = Tensor::zeros(2, 3).matmul_nt(&Tensor::zeros(2, 4));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed()[(2, 1)], 6.0);
    }

    #[test]
    fn one_hot_and_argmax() {
        let t = Tensor::one_hot(4, 2);
        assert_eq!(t.argmax_row(), 2);
        assert_eq!(t.sum(), 1.0);
    }

    #[test]
    fn frobenius_norm() {
        let t = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((t.frob_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zip_and_map() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[4., 10., 18.]);
        assert_eq!(a.map(|x| x + 1.).data(), &[2., 3., 4.]);
    }
}
