//! Adam optimizer with L2 weight decay (the paper trains with Adam,
//! `lr = 1e-3`, `wd = 1e-5`).

use crate::params::Params;
use crate::tensor::Tensor;

/// The Adam optimizer (Kingma & Ba, ICLR 2015).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer with the paper's defaults:
    /// `β1 = 0.9, β2 = 0.999, ε = 1e-8, wd = 1e-5`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-5,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Steps completed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update using the gradients accumulated in `params`,
    /// dividing them by `batch_size` first, then **zeroes the gradients**.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is not strictly positive.
    pub fn step(&mut self, params: &mut Params, batch_size: f32) {
        assert!(batch_size > 0.0, "batch size must be positive");
        if self.m.len() != params.len() {
            self.m = params
                .ids()
                .map(|id| {
                    let (r, c) = params.value(id).shape();
                    Tensor::zeros(r, c)
                })
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in params.ids().collect::<Vec<_>>() {
            let idx = id.0;
            let value = params.value(id).clone();
            let grad = params.grad(id).clone();
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let target = params.value_mut(id);
            for i in 0..value.data().len() {
                let g = grad.data()[i] / batch_size + self.weight_decay * value.data()[i];
                m.data_mut()[i] = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                v.data_mut()[i] = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m.data()[i] / bc1;
                let v_hat = v.data()[i] / bc2;
                target.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        params.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    #[test]
    fn minimizes_a_quadratic() {
        // loss = (w - 3)^2, minimized at w = 3.
        let mut params = Params::new();
        let pid = params.register("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1).with_weight_decay(0.0);
        for _ in 0..500 {
            let mut g = Graph::new();
            let w = g.param(&params, pid);
            let target = g.input(Tensor::scalar(-3.0));
            let diff = g.add(w, target);
            let loss = g.mul(diff, diff);
            g.backward(loss, &mut params);
            adam.step(&mut params, 1.0);
        }
        let w = params.value(pid).item();
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut params = Params::new();
        let used = params.register("used", Tensor::scalar(1.0));
        let unused = params.register("unused", Tensor::scalar(1.0));
        let mut adam = Adam::new(0.05).with_weight_decay(0.1);
        for _ in 0..100 {
            let mut g = Graph::new();
            let w = g.param(&params, used);
            let sq = g.mul(w, w);
            g.backward(sq, &mut params);
            adam.step(&mut params, 1.0);
        }
        assert!(params.value(unused).item() < 1.0, "decay must shrink it");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = Params::new();
        let pid = params.register("w", Tensor::scalar(2.0));
        params.accumulate_grad(pid, &Tensor::scalar(1.0));
        let mut adam = Adam::new(0.01);
        adam.step(&mut params, 1.0);
        assert_eq!(params.grad(pid).item(), 0.0);
        assert_eq!(adam.steps(), 1);
    }
}
