//! Linear layers, multi-layer perceptrons, and token embeddings.

use crate::graph::{Graph, NodeId};
use crate::init::Initializer;
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// One affine layer `x·W + b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a fresh linear layer under `prefix`.
    pub fn register(
        params: &mut Params,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        init: &mut Initializer,
    ) -> Self {
        Linear {
            w: params.register_init(&format!("{prefix}.w"), in_dim, out_dim, init),
            b: params.register(&format!("{prefix}.b"), Tensor::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to an `r×in_dim` node, yielding `r×out_dim`.
    pub fn forward(&self, g: &mut Graph, params: &Params, x: NodeId) -> NodeId {
        let w = g.param(params, self.w);
        let b = g.param(params, self.b);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

/// A multi-layer perceptron with ReLU between layers (none after the last).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer dimensions, e.g. `[18, 32, 32]`
    /// builds `18→32→32` with one hidden ReLU.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two dimensions are given.
    pub fn register(
        params: &mut Params,
        prefix: &str,
        dims: &[usize],
        init: &mut Initializer,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::register(params, &format!("{prefix}.l{i}"), w[0], w[1], init))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP to an `r×in_dim` node.
    pub fn forward(&self, g: &mut Graph, params: &Params, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, params, h);
            if i != last {
                h = g.relu(h);
            }
        }
        h
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }
}

/// A learned token-embedding table (`vocab×dim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a fresh embedding table.
    pub fn register(
        params: &mut Params,
        prefix: &str,
        vocab: usize,
        dim: usize,
        init: &mut Initializer,
    ) -> Self {
        Embedding {
            table: params.register_init(&format!("{prefix}.table"), vocab, dim, init),
            vocab,
            dim,
        }
    }

    /// Looks a token index up, yielding its `1×dim` embedding node.
    ///
    /// # Panics
    ///
    /// Panics when `token >= vocab`.
    pub fn lookup(&self, g: &mut Graph, params: &Params, token: usize) -> NodeId {
        assert!(
            token < self.vocab,
            "token {token} out of vocab {}",
            self.vocab
        );
        let t = g.param(params, self.table);
        g.row(t, token)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes() {
        let mut init = Initializer::new(3);
        let mut params = Params::new();
        let mlp = Mlp::register(&mut params, "mlp", &[6, 16, 4], &mut init);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 6));
        let y = mlp.forward(&mut g, &params, x);
        assert_eq!(g.value(y).shape(), (2, 4));
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn embedding_rows_are_table_rows() {
        let mut init = Initializer::new(4);
        let mut params = Params::new();
        let emb = Embedding::register(&mut params, "tok", 10, 5, &mut init);
        let mut g = Graph::new();
        let e3 = emb.lookup(&mut g, &params, 3);
        let expected = params
            .value(params.id_of("tok.table").unwrap())
            .row(3)
            .to_vec();
        assert_eq!(g.value(e3).data(), &expected[..]);
    }

    #[test]
    fn embedding_gradient_hits_only_used_rows() {
        let mut init = Initializer::new(5);
        let mut params = Params::new();
        let emb = Embedding::register(&mut params, "tok", 6, 3, &mut init);
        let mut g = Graph::new();
        let e = emb.lookup(&mut g, &params, 2);
        let et = g.transpose(e);
        let sq = g.matmul(e, et);
        g.backward(sq, &mut params);
        let grad = params.grad(params.id_of("tok.table").unwrap());
        for r in 0..6 {
            let norm: f32 = grad.row(r).iter().map(|v| v * v).sum();
            if r == 2 {
                assert!(norm > 0.0);
            } else {
                assert_eq!(norm, 0.0);
            }
        }
    }

    #[test]
    fn linear_is_affine() {
        let mut init = Initializer::new(6);
        let mut params = Params::new();
        let lin = Linear::register(&mut params, "l", 2, 2, &mut init);
        // Force known weights.
        let wid = params.id_of("l.w").unwrap();
        let bid = params.id_of("l.b").unwrap();
        *params.value_mut(wid) = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        *params.value_mut(bid) = Tensor::from_vec(1, 2, vec![10., 20.]);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 2, vec![3., 4.]));
        let y = lin.forward(&mut g, &params, x);
        assert_eq!(g.value(y).data(), &[13., 24.]);
    }
}
