//! # veribug-neuro
//!
//! A minimal, dependency-light deep-learning substrate: dense `f32` tensors,
//! a define-by-run reverse-mode autograd tape, an LSTM layer, MLPs, token
//! embeddings, dot-product attention, and an Adam optimizer.
//!
//! The VeriBug paper's model is small (context dim 16, attention dim 32, one
//! LSTM, two MLPs); this crate reproduces exactly the operations that model
//! needs rather than a general framework (DESIGN.md, substitution #2).
//! Gradient correctness is enforced by finite-difference tests in
//! [`graph`].
//!
//! ## Quick start — fit a tiny classifier
//!
//! ```
//! use veribug_neuro::{Adam, Graph, Initializer, Mlp, Params, Tensor};
//!
//! let mut init = Initializer::new(7);
//! let mut params = Params::new();
//! let mlp = Mlp::register(&mut params, "clf", &[2, 8, 2], &mut init);
//! let mut adam = Adam::new(1e-2);
//!
//! // XOR-ish toy data.
//! let data = [([0.0, 0.0], 0), ([1.0, 1.0], 0), ([0.0, 1.0], 1), ([1.0, 0.0], 1)];
//! for _ in 0..300 {
//!     let mut g = Graph::new();
//!     let mut losses = Vec::new();
//!     for (x, y) in &data {
//!         let input = g.input(Tensor::row_vector(x.to_vec()));
//!         let logits = mlp.forward(&mut g, &params, input);
//!         losses.push(g.cross_entropy_logits(logits, *y));
//!     }
//!     let total = losses
//!         .into_iter()
//!         .reduce(|a, b| g.add(a, b))
//!         .expect("non-empty batch");
//!     g.backward(total, &mut params);
//!     adam.step(&mut params, data.len() as f32);
//! }
//!
//! // The fitted model classifies the training points correctly.
//! let mut g = Graph::new();
//! let x = g.input(Tensor::row_vector(vec![1.0, 0.0]));
//! let logits = mlp.forward(&mut g, &params, x);
//! assert_eq!(g.value(logits).argmax_row(), 1);
//! ```

#![warn(missing_docs)]

pub mod adam;
pub mod attention;
pub mod graph;
pub mod init;
pub mod lstm;
pub mod mlp;
pub mod params;
pub mod tensor;

pub use adam::Adam;
pub use attention::dot_product_attention;
pub use graph::{Graph, NodeId};
pub use init::Initializer;
pub use lstm::Lstm;
pub use mlp::{Embedding, Linear, Mlp};
pub use params::{GradBuffer, ParamId, Params};
pub use tensor::Tensor;
