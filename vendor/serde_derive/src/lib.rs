//! Derive macros for the vendored serde stub.
//!
//! Emits empty marker-trait impls. Parsing is done directly on the token
//! stream (no `syn`/`quote` available offline): skip attributes and
//! visibility, find the `struct`/`enum` keyword, take the following ident
//! as the type name. Generic types are rejected loudly rather than
//! silently miscompiled — nothing in this workspace derives serde on a
//! generic type.

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the type name from a struct/enum definition token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("serde stub derive: expected a type name after `{kw}`");
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '<' {
                panic!(
                    "serde stub derive: generic type `{name}` is not supported; \
                     write the marker impls by hand"
                );
            }
        }
        return name.to_string();
    }
    panic!("serde stub derive: no struct/enum definition found");
}
