//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking API
//! surface but persists models through its own line-oriented text format
//! (`veribug::persist`) — no serde serializer is ever instantiated. Since
//! the build environment has no crates.io access, this vendored crate
//! provides the two trait names as markers plus derive macros that emit
//! empty impls, which keeps every `#[derive(serde::Serialize)]` in the tree
//! compiling unchanged. If a future PR adds a real wire format, swap this
//! stub for the real crate (the API surface is a strict subset).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}
