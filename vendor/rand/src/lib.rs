//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling methods —
//! on top of xoshiro256++ with SplitMix64 seeding. Streams are stable and
//! platform-independent, which is all the reproduction needs (seeds select
//! deterministic-but-arbitrary designs, stimuli, and shuffles).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the seed into the 256-bit state; it cannot
            // produce the all-zero state xoshiro forbids.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly by [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)` without modulo bias worth caring about for
/// simulation workloads (span is tiny against 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire): maps 64 random bits onto [0, span).
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, u8, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as Random>::random(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The sampling extension methods the workspace calls on RNGs
/// (mirrors rand 0.10's `Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_values_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
