//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/assertion subset `tests/properties.rs` uses:
//! integer-range strategies, tuple composition, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` /
//! `prop_assume!` macros. Sampling is seeded per test name, so failures
//! reproduce exactly; there is no shrinking — a failing case reports its
//! inputs via the panic message instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Per-block configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies (seeded per property from the test name).
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates an RNG deterministically seeded from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}

/// A value generator (the sampling core of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines seeded property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one wrapper fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                // Render inputs up front: the body may consume the args.
                // (Sample into a temporary first — the binding may be a
                // pattern, not a single identifier.)
                let mut inputs = ::std::string::String::new();
                $(
                    let sampled = $crate::Strategy::sample(&($strat), &mut rng);
                    if !inputs.is_empty() {
                        inputs.push_str(", ");
                    }
                    inputs.push_str(&format!(
                        "{} = {:?}", stringify!($arg), &sampled
                    ));
                    let $arg = sampled;
                )+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "property `{}` failed at case {case}: {msg}\n  inputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// Fails the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the property unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {a:?}",
                stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Discards the current case (treated as a vacuous pass) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10, 0u64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and extra attributes pass through the macro.
        #[test]
        fn ranges_are_in_bounds(x in 3u64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x), "x out of range: {}", x);
            prop_assert!(y < 4);
        }

        #[test]
        fn mapped_tuples_keep_their_invariant((a, sum) in pair()) {
            prop_assert!(sum >= a);
            prop_assert_ne!(sum + 1, a);
            if a > 100 {
                // Exercise early Ok returns the way real bodies do.
                return Ok(());
            }
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_discards_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = (0u64..1000, 0u64..1000);
        let mut r1 = TestRng::deterministic("a");
        let mut r2 = TestRng::deterministic("a");
        let mut r3 = TestRng::deterministic("b");
        let s1: Vec<_> = (0..16).map(|_| strat.sample(&mut r1)).collect();
        let s2: Vec<_> = (0..16).map(|_| strat.sample(&mut r2)).collect();
        let s3: Vec<_> = (0..16).map(|_| strat.sample(&mut r3)).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    use crate::{Strategy, TestRng};
}
