//! Offline stand-in for `criterion`.
//!
//! Provides the builder/macro surface the pipeline benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`) backed by
//! a plain wall-clock harness: each benchmark is warmed up once, then timed
//! over `sample_size` samples, and the per-iteration mean / min / max are
//! printed. No statistical analysis, HTML reports, or CLI filtering.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How expensive per-iteration setup values are to hold in memory
/// (accepted for API compatibility; batching always runs per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values; thousands could be batched.
    SmallInput,
    /// Large setup values; only a few should exist at once.
    LargeInput,
    /// Setup must run immediately before each iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Times a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` value per iteration; only the
    /// routine is on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples collected)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len(),
        );
    }
}

/// Formats a duration with criterion-style units.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark target functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` to run the given benchmark groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }

    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = target,
    );
    criterion_group!(simple, target);

    #[test]
    fn groups_run_both_macro_forms() {
        configured();
        simple();
    }

    #[test]
    fn durations_format_with_scaled_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
