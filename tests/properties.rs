//! Property-based tests on cross-crate invariants: parser/printer
//! round-trips over generated designs, simulator determinism and value
//! invariants, slicing soundness, feature/attention well-formedness, and
//! golden-vs-golden co-simulation.

use proptest::prelude::*;

use veribug_suite::cdfg::{Cdfg, Slice, Vdg};
use veribug_suite::mutate;
use veribug_suite::rvdg::{ExprConfig, Generator, RvdgConfig};
use veribug_suite::sim::{Simulator, TestbenchGen, Value};
use veribug_suite::veribug::StatementFeatures;
use veribug_suite::verilog::{self, NodeKind};

/// A strategy over RVDG configurations (bounded so tests stay fast).
fn rvdg_config() -> impl Strategy<Value = RvdgConfig> {
    (
        1usize..5,
        1usize..3,
        1usize..3,
        1usize..4,
        1usize..4,
        1usize..3,
        0usize..3,
    )
        .prop_map(
            |(inputs, state, outputs, temps, branches, stmts, wide)| RvdgConfig {
                num_inputs: inputs,
                num_state: state,
                num_outputs: outputs,
                num_temps: temps,
                num_branches: branches,
                stmts_per_branch: stmts,
                num_wide_inputs: wide,
                wide_width: 3,
                expr: ExprConfig::default(),
                mix: Default::default(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated design parses, prints, and re-parses to the same
    /// statement structure with stable ids.
    #[test]
    fn generated_designs_roundtrip(cfg in rvdg_config(), seed in 0u64..1000) {
        let design = Generator::new(cfg, seed).generate(0).expect("generates");
        let printed = verilog::print_module(&design.module);
        let reparsed = verilog::parse(&printed).expect("round-trips").top().clone();
        let a: Vec<_> = design.module.assignments().iter().map(|x| (x.id, x.kind)).collect();
        let b: Vec<_> = reparsed.assignments().iter().map(|x| (x.id, x.kind)).collect();
        prop_assert_eq!(a, b);
    }

    /// Simulation is deterministic: same design + same stimulus = same trace.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..500) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(0).expect("generates");
        let mut sim1 = Simulator::new(&design.module).expect("elaborates");
        let mut sim2 = Simulator::new(&design.module).expect("elaborates");
        let stim = TestbenchGen::new(seed ^ 0xABCD).generate(sim1.netlist(), 24);
        let t1 = sim1.run(&stim).expect("simulates");
        let t2 = sim2.run(&stim).expect("simulates");
        prop_assert_eq!(t1, t2);
    }

    /// Every recorded signal value respects its declared width, and every
    /// executed statement is part of the design.
    #[test]
    fn trace_values_respect_widths(seed in 0u64..500) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(1).expect("generates");
        let mut sim = Simulator::new(&design.module).expect("elaborates");
        let stim = TestbenchGen::new(seed).generate(sim.netlist(), 16);
        let trace = sim.run(&stim).expect("simulates");
        let stmt_ids: std::collections::BTreeSet<_> =
            design.module.assignments().iter().map(|a| a.id).collect();
        for cyc in &trace.cycles {
            for (sig, value) in sim.netlist().signals().iter().zip(cyc.signals.iter()) {
                prop_assert_eq!(value.width(), sig.width);
                prop_assert_eq!(value.bits() & !Value::mask(sig.width), 0);
            }
            for exec in &cyc.execs {
                prop_assert!(stmt_ids.contains(&exec.stmt));
            }
        }
    }

    /// Slicing soundness: every statement whose LHS transitively reaches
    /// the target in the VDG is in the slice, and nothing else is.
    #[test]
    fn slice_matches_vdg_reachability(seed in 0u64..500) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(2).expect("generates");
        let module = &design.module;
        let target = module.output_names()[0].to_owned();
        let vdg = Vdg::build(module);
        let slice = Slice::of_target(module, &target);
        for a in module.assignments() {
            let reaches = vdg.influences(&a.lhs.base, &target);
            prop_assert_eq!(
                slice.contains(a.id),
                reaches,
                "stmt {} (lhs {}) slice membership mismatch",
                a.id,
                &a.lhs.base
            );
        }
    }

    /// CDFG guard variables are consistent with the VDG's control edges.
    #[test]
    fn cdfg_guards_imply_vdg_control_edges(seed in 0u64..300) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(3).expect("generates");
        let module = &design.module;
        let cdfg = Cdfg::build(module);
        let vdg = Vdg::from_cdfg(module, &cdfg);
        for node in cdfg.nodes() {
            for g in &node.guard_vars {
                prop_assert!(
                    vdg.influences(g, &node.lhs),
                    "guard {} does not influence {}",
                    g,
                    &node.lhs
                );
            }
        }
    }

    /// Feature extraction: every path is non-empty, starts at a node
    /// adjacent to the operand, and every operand of a statement appears in
    /// the statement's RHS (or LHS index).
    #[test]
    fn features_are_well_formed(seed in 0u64..500) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(4).expect("generates");
        for (id, f) in StatementFeatures::extract_all(&design.module) {
            let a = design.module.assignment(id).expect("statement exists");
            let rhs_vars: Vec<&str> = a.rhs.referenced_signals();
            for op in &f.operands {
                prop_assert!(
                    rhs_vars.contains(&op.name.as_str()),
                    "operand {} not in RHS of {}",
                    &op.name,
                    id
                );
                prop_assert!(!op.paths.is_empty());
                for path in &op.paths {
                    prop_assert!(!path.is_empty());
                    for kind in path {
                        // Paths contain interior nodes only.
                        prop_assert_ne!(*kind, NodeKind::Operand);
                        prop_assert_ne!(*kind, NodeKind::Literal);
                    }
                }
            }
        }
    }

    /// Mutation invariants: a mutant differs from golden in exactly one
    /// statement, ids are preserved, and the mutant re-parses.
    #[test]
    fn mutants_differ_in_exactly_one_statement(seed in 0u64..300) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(5).expect("generates");
        let module = &design.module;
        let sites = mutate::enumerate_sites(module, None);
        prop_assume!(!sites.is_empty());
        let site = &sites[(seed as usize) % sites.len()];
        let Some(mutant) = mutate::apply(module, site) else {
            return Ok(());
        };
        let golden_stmts = module.assignments();
        let mutant_stmts = mutant.assignments();
        prop_assert_eq!(golden_stmts.len(), mutant_stmts.len());
        let mut diffs = 0;
        for (g, m) in golden_stmts.iter().zip(&mutant_stmts) {
            prop_assert_eq!(g.id, m.id);
            if g != m {
                diffs += 1;
                prop_assert_eq!(g.id, site.stmt);
            }
        }
        prop_assert!(diffs <= 1, "mutation touched {} statements", diffs);
        verilog::parse(&verilog::print_module(&mutant)).expect("mutant re-parses");
    }

    /// Golden-vs-golden co-simulation never labels a run as failing.
    #[test]
    fn golden_never_fails_against_itself(seed in 0u64..200) {
        let design = Generator::new(RvdgConfig::default(), seed).generate(6).expect("generates");
        let module = &design.module;
        let target = module.output_names()[0].to_owned();
        let sim = Simulator::new(module).expect("elaborates");
        let stimuli = TestbenchGen::new(seed).generate_many(sim.netlist(), 12, 3);
        let runs = mutate::cosimulate(module, module, &target, &stimuli).expect("cosimulates");
        prop_assert!(!mutate::is_observable(&runs));
    }
}
