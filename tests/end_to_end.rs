//! Cross-crate integration tests: the full pipeline from Verilog source to
//! localization heatmaps, exercised on small but complete scenarios.

use veribug_suite::cdfg::{dependencies_of, Slice, Vdg};
use veribug_suite::mutate::{BugBudget, Campaign, MutationKind};
use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::sim::{Simulator, TestbenchGen, TraceLabel};
use veribug_suite::veribug::{
    coverage::{coverage_for_mutants, labelled_traces},
    model::{ModelConfig, VeriBugModel},
    train::{self, Dataset, TrainConfig},
    Explainer, StatementFeatures, DEFAULT_THRESHOLD,
};
use veribug_suite::verilog;

const ARB: &str = "\
module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);
  reg state;
  always @(posedge clk) state <= req1 ^ req2;
  always @(*) begin
    if (state) gnt1 = req1 & ~req2;
    else gnt1 = req1 | req2;
    gnt2 = req2 & ~req1;
  end
endmodule
";

fn trained_model() -> VeriBugModel {
    let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 5)
        .generate_corpus(6)
        .expect("corpus generates")
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 32, 2).expect("dataset builds");
    let mut model = VeriBugModel::new(ModelConfig::default());
    train::train(
        &mut model,
        &dataset,
        &TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
    )
    .expect("training succeeds");
    model
}

#[test]
fn parse_analyze_simulate_roundtrip() {
    let module = verilog::parse(ARB).expect("parses").top().clone();

    // Static analysis agrees with the design's structure.
    let vdg = Vdg::build(&module);
    let dep: Vec<_> = dependencies_of(&vdg, "gnt1").into_iter().collect();
    assert_eq!(dep, vec!["req1", "req2", "state"]);
    let slice = Slice::of_target(&module, "gnt1");
    assert_eq!(slice.len(), 3); // state stmt + both gnt1 branches

    // Simulation executes the slice and records operand values.
    let mut sim = Simulator::new(&module).expect("elaborates");
    let stim = TestbenchGen::new(3).generate(sim.netlist(), 32);
    let trace = sim.run(&stim).expect("simulates");
    let executed = trace.executed_stmts();
    for stmt in &slice.stmts {
        assert!(executed.contains(stmt), "slice stmt {stmt} never executed");
    }

    // Feature extraction covers the slice statements.
    let features = StatementFeatures::extract_all(&module);
    for stmt in &slice.stmts {
        assert!(features.contains_key(stmt), "no features for {stmt}");
    }
}

#[test]
fn pretty_print_mutant_reparses_and_preserves_ids() {
    let module = verilog::parse(ARB).expect("parses").top().clone();
    let sites = veribug_suite::mutate::enumerate_sites(&module, None);
    assert!(!sites.is_empty());
    for site in sites.iter().take(20) {
        let Some(mutant) = veribug_suite::mutate::apply(&module, site) else {
            continue;
        };
        let printed = verilog::print_module(&mutant);
        let reparsed = verilog::parse(&printed)
            .unwrap_or_else(|e| panic!("mutant does not reparse: {e}\n{printed}"));
        let ids_a: Vec<_> = mutant.assignments().iter().map(|a| a.id).collect();
        let ids_b: Vec<_> = reparsed.top().assignments().iter().map(|a| a.id).collect();
        assert_eq!(ids_a, ids_b, "ids changed through print/parse");
    }
}

#[test]
fn campaign_explain_coverage_end_to_end() {
    let model = trained_model();
    let golden = verilog::parse(ARB).expect("parses").top().clone();
    let budget = BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let mutants = Campaign::new(7)
        .with_runs_per_mutant(16)
        .run(&golden, "gnt1", &budget)
        .expect("campaign runs");
    assert!(!mutants.is_empty());

    let (cov, outcomes) = coverage_for_mutants(&model, &mutants, "gnt1");
    assert_eq!(cov.injected, mutants.len());
    assert_eq!(outcomes.len(), mutants.len());
    assert!(cov.observable > 0, "nothing observable");
    // Every outcome is self-consistent.
    for (m, o) in mutants.iter().zip(&outcomes) {
        assert_eq!(o.kind, m.site.kind);
        assert_eq!(o.observable, m.observable);
        if o.localized {
            assert_eq!(o.top1, Some(o.bug_stmt));
        }
    }
}

#[test]
fn explainer_maps_are_distributions_and_respect_slice() {
    let model = trained_model();
    let golden = verilog::parse(ARB).expect("parses").top().clone();
    let mutants = Campaign::new(11)
        .with_runs_per_mutant(12)
        .run(
            &golden,
            "gnt1",
            &BugBudget {
                negation: 1,
                operation: 0,
                misuse: 0,
            },
        )
        .expect("campaign runs");
    let m = mutants
        .iter()
        .find(|m| m.observable)
        .expect("observable bug");
    let mut ex = Explainer::new(&model, &m.module, "gnt1");
    let runs = labelled_traces(m);
    let (heatmap, f_map, c_map) = ex.explain(&runs, DEFAULT_THRESHOLD);

    let slice = ex.slice().clone();
    for map in [&f_map, &c_map] {
        for (stmt, att) in &map.per_stmt {
            assert!(slice.contains(*stmt), "{stmt} outside slice");
            let sum: f32 = att.weights.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-3,
                "attention not a distribution: {att:?}"
            );
        }
    }
    for (stmt, entry) in &heatmap.entries {
        assert!(slice.contains(*stmt));
        assert!((0.0..=1.0).contains(&entry.suspiciousness));
    }
}

#[test]
fn benchmark_designs_full_pipeline_smoke() {
    // Every Table I design must survive the full pipeline: parse, analyze,
    // inject, co-simulate, and explain — with a lightly trained model.
    let model = trained_model();
    for design in veribug_suite::designs::catalog() {
        let golden = design.module().expect("design parses");
        let target = design.targets[0];
        let mutants = Campaign::new(13)
            .with_runs_per_mutant(10)
            .run(
                &golden,
                target,
                &BugBudget {
                    negation: 1,
                    operation: 1,
                    misuse: 1,
                },
            )
            .unwrap_or_else(|e| panic!("{}: campaign: {e}", design.name));
        let (cov, _) = coverage_for_mutants(&model, &mutants, target);
        assert_eq!(cov.injected, mutants.len(), "{}", design.name);
    }
}

#[test]
fn labels_match_divergence() {
    let golden = verilog::parse(ARB).expect("parses").top().clone();
    let mutants = Campaign::new(17)
        .with_runs_per_mutant(12)
        .run(
            &golden,
            "gnt1",
            &BugBudget {
                negation: 1,
                operation: 1,
                misuse: 1,
            },
        )
        .expect("campaign runs");
    for m in &mutants {
        for run in &m.runs {
            let failures = run.failure_cycles();
            match run.label {
                TraceLabel::Failing => {
                    assert!(!failures.is_empty(), "failing run without divergence")
                }
                TraceLabel::Correct => {
                    assert!(failures.is_empty(), "correct run with divergence")
                }
            }
        }
        if m.observable {
            assert!(m.runs.iter().any(|r| r.label == TraceLabel::Failing));
        }
        let kinds = [
            MutationKind::Negation,
            MutationKind::OperationSubstitution,
            MutationKind::VariableMisuse,
        ];
        assert!(kinds.contains(&m.site.kind));
    }
}
