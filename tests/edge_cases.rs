//! Edge-case and failure-injection tests across the workspace: parser
//! rejection paths, simulator corner semantics, explainer degenerate inputs,
//! persistence tampering, and CLI-facing invariants.

use veribug_suite::sim::{InputVector, Simulator, Stimulus, TestbenchGen, Value};
use veribug_suite::veribug::{
    coverage::grouped_heatmap,
    explain::LabelledTrace,
    model::{ModelConfig, VeriBugModel},
    persist, Explainer, StatementFeatures, DEFAULT_THRESHOLD,
};
use veribug_suite::verilog::{self, ParseError};

fn stim(vectors: Vec<Vec<(&str, u64)>>) -> Stimulus {
    Stimulus {
        vectors: vectors
            .into_iter()
            .map(|v| InputVector {
                assigns: v.into_iter().map(|(n, b)| (n.to_owned(), b)).collect(),
            })
            .collect(),
    }
}

// ---- parser rejection paths ----

#[test]
fn parser_rejects_unsupported_constructs() {
    // Width above 64 bits.
    let err = verilog::parse("module m(input [64:0] a, output y);\nassign y = a[0];\nendmodule")
        .unwrap_err();
    assert!(matches!(err, ParseError::Unsupported { .. }), "{err}");

    // Ascending bit range.
    let err = verilog::parse("module m(input [0:3] a, output y);\nassign y = a[0];\nendmodule")
        .unwrap_err();
    assert!(matches!(err, ParseError::Unsupported { .. }), "{err}");

    // Non-zero LSB range.
    let err = verilog::parse("module m(input [7:4] a, output y);\nassign y = a[4];\nendmodule")
        .unwrap_err();
    assert!(matches!(err, ParseError::Unsupported { .. }), "{err}");
}

#[test]
fn parser_rejects_malformed_modules() {
    for (src, what) in [
        ("", "empty file"),
        (
            "module m(input a, output y)\nassign y = a;\nendmodule",
            "missing semicolon",
        ),
        (
            "module m(input a, output y);\nassign y = a &;\nendmodule",
            "dangling operator",
        ),
        (
            "module m(input a, output y);\nassign y = a;\n",
            "missing endmodule",
        ),
        (
            "module m(input a, output y);\nassign = a;\nendmodule",
            "missing lvalue",
        ),
    ] {
        assert!(verilog::parse(src).is_err(), "accepted {what}");
    }
}

#[test]
fn parser_rejects_non_constant_parameter() {
    let err =
        verilog::parse("module m(input a, output y);\nparameter P = a;\nassign y = a;\nendmodule")
            .unwrap_err();
    assert!(matches!(err, ParseError::Semantic { .. }), "{err}");
}

#[test]
fn division_by_zero_in_constant_expression_is_semantic_error() {
    let err = verilog::parse(
        "module m(input a, output y);\nlocalparam P = 4 / 0;\nassign y = a;\nendmodule",
    )
    .unwrap_err();
    assert!(matches!(err, ParseError::Semantic { .. }), "{err}");
}

// ---- simulator corner semantics ----

#[test]
fn sixty_four_bit_arithmetic_wraps() {
    let src =
        "module m(input [63:0] a, input [63:0] b, output [63:0] s);\nassign s = a + b;\nendmodule";
    let unit = verilog::parse(src).unwrap();
    let mut sim = Simulator::new(unit.top()).unwrap();
    let t = sim
        .run(&stim(vec![vec![("a", u64::MAX), ("b", 1)]]))
        .unwrap();
    let s = sim.netlist().signal_id("s").unwrap();
    assert_eq!(t.cycles[0].value(s).bits(), 0);
}

#[test]
fn shift_by_full_width_clears() {
    let src =
        "module m(input [7:0] a, input [6:0] n, output [7:0] y);\nassign y = a << n;\nendmodule";
    let unit = verilog::parse(src).unwrap();
    let mut sim = Simulator::new(unit.top()).unwrap();
    let t = sim.run(&stim(vec![vec![("a", 0xFF), ("n", 64)]])).unwrap();
    let y = sim.netlist().signal_id("y").unwrap();
    assert_eq!(t.cycles[0].value(y).bits(), 0);
}

#[test]
fn logical_vs_bitwise_operators_differ_on_vectors() {
    let src = "module m(input [1:0] a, input [1:0] b, output l, output [1:0] w);\n\
               assign l = a && b;\nassign w = a & b;\nendmodule";
    let unit = verilog::parse(src).unwrap();
    let mut sim = Simulator::new(unit.top()).unwrap();
    // a=2, b=1: bitwise AND is 0, logical AND is 1.
    let t = sim.run(&stim(vec![vec![("a", 2), ("b", 1)]])).unwrap();
    let l = sim.netlist().signal_id("l").unwrap();
    let w = sim.netlist().signal_id("w").unwrap();
    assert_eq!(t.cycles[0].value(l).bits(), 1);
    assert_eq!(t.cycles[0].value(w).bits(), 0);
}

#[test]
fn partial_lhs_writes_merge_bits() {
    let src = "module m(input a, input b, output reg [3:0] y);\n\
               always @(*) begin\ny = 4'b0000;\ny[0] = a;\ny[3] = b;\nend\nendmodule";
    let unit = verilog::parse(src).unwrap();
    let mut sim = Simulator::new(unit.top()).unwrap();
    let t = sim.run(&stim(vec![vec![("a", 1), ("b", 1)]])).unwrap();
    let y = sim.netlist().signal_id("y").unwrap();
    assert_eq!(t.cycles[0].value(y).bits(), 0b1001);
}

#[test]
fn empty_stimulus_gives_empty_trace() {
    let src = "module m(input a, output y);\nassign y = a;\nendmodule";
    let unit = verilog::parse(src).unwrap();
    let mut sim = Simulator::new(unit.top()).unwrap();
    let t = sim.run(&stim(vec![])).unwrap();
    assert!(t.is_empty());
    assert!(t.executed_stmts().is_empty());
}

#[test]
fn vcd_export_of_benchmark_design_is_wellformed() {
    let design = veribug_suite::designs::USBF_IDMA;
    let module = design.module().unwrap();
    let mut sim = Simulator::new(&module).unwrap();
    let tb = TestbenchGen::new(5).generate(sim.netlist(), 32);
    let trace = sim.run(&tb).unwrap();
    let vcd = veribug_suite::sim::to_vcd(sim.netlist(), &trace, 10);
    assert!(vcd.contains("$enddefinitions $end"));
    // Every declared signal appears exactly once in the header.
    for sig in sim.netlist().signals() {
        let decl = format!(" {} $end", sig.name);
        assert_eq!(
            vcd.matches(&decl).count(),
            1,
            "signal {} declared wrong number of times",
            sig.name
        );
    }
    // Timestamps are monotonically increasing.
    let stamps: Vec<u64> = vcd
        .lines()
        .filter_map(|l| l.strip_prefix('#').and_then(|n| n.parse().ok()))
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
}

// ---- explainer degenerate inputs ----

#[test]
fn explainer_with_no_runs_yields_empty_heatmap() {
    let module =
        verilog::parse("module m(input a, input b, output y);\nassign y = a & b;\nendmodule")
            .unwrap()
            .top()
            .clone();
    let model = VeriBugModel::new(ModelConfig::default());
    let mut ex = Explainer::new(&model, &module, "y");
    let (heatmap, f_map, c_map) = ex.explain(&[], DEFAULT_THRESHOLD);
    assert!(heatmap.is_empty());
    assert!(f_map.is_empty());
    assert!(c_map.is_empty());
}

#[test]
fn grouped_heatmap_with_more_groups_than_runs_is_safe() {
    let module =
        verilog::parse("module m(input a, input b, output y);\nassign y = a ^ b;\nendmodule")
            .unwrap()
            .top()
            .clone();
    let model = VeriBugModel::new(ModelConfig::default());
    let mut sim = Simulator::new(&module).unwrap();
    let tb = TestbenchGen::new(2).generate(sim.netlist(), 8);
    let trace = sim.run(&tb).unwrap();
    let runs = vec![LabelledTrace::new(
        veribug_suite::sim::TraceLabel::Failing,
        &trace,
    )];
    let mut ex = Explainer::new(&model, &module, "y");
    // 8 groups over 1 run must not panic and must still use the run.
    let heatmap = grouped_heatmap(&mut ex, &runs, DEFAULT_THRESHOLD, 8);
    // With no correct traces and no failure cycles the whole trace is F_t;
    // C_t is empty, so the statement lands in the heatmap as only-in-failing.
    assert_eq!(heatmap.len(), 1);
}

#[test]
fn explainer_target_without_slice_is_empty() {
    let module = verilog::parse("module m(input a, output y);\nassign y = a;\nendmodule")
        .unwrap()
        .top()
        .clone();
    let model = VeriBugModel::new(ModelConfig::default());
    let mut ex = Explainer::new(&model, &module, "ghost");
    assert!(ex.slice().is_empty());
    let (heatmap, _, _) = ex.explain(&[], DEFAULT_THRESHOLD);
    assert!(heatmap.is_empty());
}

// ---- persistence tampering ----

#[test]
fn persisted_model_survives_reformatting_noise() {
    let model = VeriBugModel::new(ModelConfig::default());
    let mut text = persist::to_string(&model);
    text.push_str("\n\n"); // trailing noise after `end` is ignored
    let loaded = persist::from_str(&text).unwrap();
    assert_eq!(loaded.config(), model.config());
}

#[test]
fn persisted_model_rejects_unknown_parameter() {
    let model = VeriBugModel::new(ModelConfig::default());
    let text = persist::to_string(&model).replacen("param tok.table", "param bogus.name", 1);
    assert!(persist::from_str(&text).is_err());
}

// ---- feature/statement invariants on the benchmark designs ----

#[test]
fn every_benchmark_slice_statement_has_features_or_is_constant() {
    for design in veribug_suite::designs::catalog() {
        let module = design.module().unwrap();
        let features = StatementFeatures::extract_all(&module);
        for target in design.targets {
            let slice = veribug_suite::cdfg::Slice::of_target(&module, target);
            for stmt in &slice.stmts {
                let a = module.assignment(*stmt).unwrap();
                let has_operands = !a.rhs.referenced_signals().is_empty();
                assert_eq!(
                    features.contains_key(stmt),
                    has_operands,
                    "{}: features/operands mismatch at {stmt}",
                    design.name
                );
            }
        }
    }
}

#[test]
fn value_masking_invariant_holds_for_all_widths() {
    for width in 1..=64u8 {
        let v = Value::new(u64::MAX, width);
        assert_eq!(v.bits(), Value::mask(width));
        assert_eq!(v.width(), width);
    }
}
